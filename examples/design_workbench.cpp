// The methodology as a tool: feed every shipped design through the
// pipeline the paper prescribes —
//   constraint graph -> classify -> Theorem 1 / Theorem 2 (/ Theorem 3
//   where the protocol supplies layers) -> exact model checker as ground
//   truth — and print a one-screen verdict table.
//
// Run:  ./build/examples/design_workbench
//
// With --synthesize the workbench runs the other direction: it strips each
// shipped design back to its candidate triple (closure actions +
// constraints) and asks the CEGIS synthesizer to re-derive the convergence
// actions from scratch, printing the winner, its certificate, and the
// pruning statistics. Flags: --seed=N, --max-candidates=N,
// --report-out=PATH (JSON array of per-target synthesis reports).
//
// Backend selection: --backend=legacy|store picks the dense arrays or the
// compact state store for every exhaustive check (results are
// byte-identical; the store scales further), and --state-budget=N caps the
// state-space size. Both default from NONMASK_STORE_BACKEND /
// NONMASK_STATE_BUDGET.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "obs/dashboard.hpp"
#include "obs/telemetry.hpp"
#include "cgraph/theorems.hpp"
#include "synth/report.hpp"
#include "synth/synthesize.hpp"
#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "msg/mp_diffusing.hpp"
#include "msg/mp_token_ring.hpp"
#include "store/facade.hpp"
#include "protocols/atomic_action.hpp"
#include "protocols/coloring.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/leader_election.hpp"
#include "protocols/matching.hpp"
#include "protocols/running_example.hpp"
#include "protocols/aggregation.hpp"
#include "protocols/distributed_reset.hpp"
#include "protocols/independent_set.hpp"
#include "protocols/spanning_tree.hpp"
#include "protocols/tmr.hpp"
#include "protocols/token_ring.hpp"
#include "protocols/token_ring_small.hpp"

using namespace nonmask;

namespace {

struct Entry {
  Design design;
  std::vector<std::vector<std::size_t>> layers;  // optional, for Theorem 3
};

void report_row(const Entry& e, const store::StoreConfig& store_cfg) {
  const Design& d = e.design;
  StateSpace space(d.program, store_cfg.budget);
  ValidationOptions opts;
  opts.space = &space;

  std::string verdict = "—";
  std::string via = "—";
  const auto cg = infer_constraint_graph(d.program);
  if (cg.ok) {
    via = to_string(classify(cg.graph));
    auto r = validate_design(d, opts);
    if (!r.applies && !e.layers.empty()) {
      r = validate_theorem3(d, e.layers, opts);
      if (r.applies) via += " + layers";
    }
    verdict = r.applies ? r.theorem.substr(0, 9) : "none apply";
  } else {
    verdict = "graph: " + cg.error;
  }

  const auto exact =
      store::check_convergence_via(store_cfg, space, d.S(), d.T());
  std::cout << std::left << std::setw(34) << d.name << std::setw(23) << via
            << std::setw(14) << verdict << std::setw(11)
            << to_string(exact.verdict);
  if (exact.verdict == ConvergenceVerdict::kConverges) {
    std::cout << "worst " << exact.max_steps_to_S << " steps";
  } else if (exact.cycle) {
    std::cout << "cycle of " << exact.cycle->size();
    // The paper's computations are fair; check whether fairness rescues it.
    const auto fair = store::check_convergence_weakly_fair_via(
        store_cfg, space, d.S(), d.T());
    std::cout << "; weakly-fair: " << to_string(fair.verdict);
  } else if (exact.deadlock) {
    std::cout << "deadlock";
  }
  std::cout << "\n";
}

struct SynthTarget {
  std::string label;
  CandidateTriple candidate;
};

int run_synthesize(std::uint64_t seed, std::uint64_t max_candidates,
                   const std::string& report_out,
                   const store::StoreConfig& store_cfg) {
  std::cout << "design workbench — CEGIS synthesis of convergence actions\n"
            << "(seed " << seed << ", max " << max_candidates
            << " combinations per target)\n";

  std::vector<SynthTarget> targets;
  targets.push_back({"running-example",
                     make_running_example(RunningExampleVariant::kWriteYZ)
                         .candidate()});
  targets.push_back(
      {"diffusing-tree",
       make_diffusing(RootedTree::balanced(3, 2), false).design.candidate()});
  targets.push_back(
      {"token-ring", make_token_ring_bounded(3, 3, false).design.candidate()});
  targets.push_back(
      {"coloring", make_coloring(UndirectedGraph::cycle(4)).design.candidate()});

  std::string reports;
  int failures = 0;
  for (const auto& target : targets) {
    synth::SynthesisOptions opts;
    opts.seed = seed;
    opts.max_candidates = max_candidates;
    opts.design_name = target.label + "-synth";
    opts.store = store_cfg;
    opts.state_budget = store_cfg.budget;
    const auto result = synth::synthesize(target.candidate, opts);

    std::cout << "\n=== " << target.label << " ===\n";
    if (!result.success) {
      std::cout << "  synthesis FAILED: " << result.failure << "\n";
      ++failures;
    } else {
      std::cout << "  winner (combination " << result.winner_index << " of "
                << result.total_combinations << "):\n";
      for (const auto& d : result.winner_descriptions) {
        std::cout << "    " << d << "\n";
      }
      std::cout << "  certificate: " << to_string(result.certification.method)
                << (result.certification.theorem_certified()
                        ? " (audit clean)"
                        : "")
                << "\n  exact checker: "
                << to_string(result.exact.convergence.verdict) << ", worst "
                << result.exact.convergence.max_steps_to_S << " steps to S\n";
    }
    const auto& st = result.stats;
    std::cout << "  evaluated " << st.evaluated << " combinations ("
              << st.pruned_by_seed << " seed-pruned, " << st.falsified
              << " falsified, " << st.exact_checks << " exact checks, "
              << st.seeds_collected << " seeds banked)\n";

    if (!reports.empty()) reports += ",\n";
    reports += synth::render_synthesis_report(result);
  }

  if (!report_out.empty()) {
    std::ofstream out(report_out);
    if (!out) {
      std::cerr << "cannot write " << report_out << "\n";
      return 1;
    }
    out << "[" << reports << "]\n";
    std::cout << "\nwrote " << report_out << "\n";
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool synthesize = false;
  std::uint64_t seed = 0x5e17ULL;
  std::uint64_t max_candidates = 50'000;
  std::string report_out;
  std::string dashboard_out;
  store::StoreConfig store_cfg = store::StoreConfig::from_env();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--synthesize") {
      synthesize = true;
    } else if (arg.rfind("--dashboard-out=", 0) == 0) {
      dashboard_out = arg.substr(16);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--max-candidates=", 0) == 0) {
      max_candidates = std::strtoull(arg.c_str() + 17, nullptr, 10);
    } else if (arg.rfind("--report-out=", 0) == 0) {
      report_out = arg.substr(13);
    } else if (arg.rfind("--backend=", 0) == 0) {
      const std::string backend = arg.substr(10);
      if (backend == "store") {
        store_cfg.backend = store::StoreBackend::kStore;
      } else if (backend == "legacy") {
        store_cfg.backend = store::StoreBackend::kLegacyDense;
      } else {
        std::cerr << "unknown backend '" << backend << "'\n";
        return 2;
      }
    } else if (arg.rfind("--state-budget=", 0) == 0) {
      store_cfg.budget = std::strtoull(arg.c_str() + 15, nullptr, 10);
    } else {
      std::cerr << "usage: design_workbench [--synthesize] [--seed=N]\n"
                   "         [--max-candidates=N] [--report-out=PATH]\n"
                   "         [--backend=legacy|store] [--state-budget=N]\n"
                   "         [--dashboard-out=PATH]\n";
      return 2;
    }
  }
  obs::Telemetry::start_from_env();
  if (!dashboard_out.empty() && !obs::Telemetry::running()) {
    obs::Telemetry::start({});
  }
  const auto finish = [&](int rc) {
    obs::Telemetry::stop();
    if (!dashboard_out.empty()) {
      obs::DashboardSpec spec;
      spec.title = synthesize ? "design_workbench: CEGIS synthesis"
                              : "design_workbench: theorem validation";
      spec.subtitle = std::string("backend ") +
                      store::to_string(store_cfg.backend) + ", state budget " +
                      std::to_string(store_cfg.budget);
      spec.summary = {
          {"mode", synthesize ? "synthesize" : "validate"},
          {"backend", store::to_string(store_cfg.backend)},
          {"state budget", std::to_string(store_cfg.budget)},
          {"exit code", std::to_string(rc)},
      };
      spec.samples = obs::Telemetry::samples();
      obs::write_dashboard_file(dashboard_out, spec);
      std::cout << "dashboard written to " << dashboard_out << "\n";
    }
    return rc;
  };
  if (synthesize) {
    return finish(run_synthesize(seed, max_candidates, report_out, store_cfg));
  }
  std::cout << "design workbench — theorem validation vs exact checking\n\n"
            << std::left << std::setw(34) << "design" << std::setw(23)
            << "graph shape" << std::setw(14) << "validated by"
            << std::setw(11) << "checker" << "detail\n"
            << std::string(96, '-') << "\n";

  std::vector<Entry> entries;
  entries.push_back(
      {make_running_example(RunningExampleVariant::kWriteYZ), {}});
  entries.push_back(
      {make_running_example(RunningExampleVariant::kWriteXBoth), {}});
  entries.push_back(
      {make_running_example(RunningExampleVariant::kDecreaseX), {}});
  entries.push_back({make_diffusing(RootedTree::balanced(5, 2), false).design,
                     {}});
  entries.push_back({make_diffusing(RootedTree::balanced(5, 2), true).design,
                     {}});
  {
    auto tr = make_token_ring_bounded(3, 3, false);
    entries.push_back({tr.design, tr.layers});
  }
  entries.push_back({make_dijkstra_ring(4, 5).design, {}});
  entries.push_back({make_dijkstra_three_state(4).design, {}});
  entries.push_back({make_dijkstra_four_state(4).design, {}});
  entries.push_back(
      {make_distributed_reset(RootedTree::chain(3), 2, false).design, {}});
  {
    auto cd = make_coloring(UndirectedGraph::cycle(4));
    entries.push_back({cd.design, cd.layers});
  }
  entries.push_back({make_leader_election(4).design, {}});
  entries.push_back(
      {make_spanning_tree(UndirectedGraph::cycle(4)).design, {}});
  entries.push_back({make_matching(UndirectedGraph::path(4)).design, {}});
  entries.push_back(
      {make_independent_set(UndirectedGraph::cycle(5)).design, {}});
  entries.push_back({make_aggregation(RootedTree::chain(4), 2).design, {}});
  entries.push_back({make_atomic_action(2).design, {}});
  entries.push_back({make_mp_token_ring(2, 3).design, {}});
  entries.push_back({make_mp_diffusing(RootedTree::chain(3)).design, {}});

  for (const auto& e : entries) report_row(e, store_cfg);

  // Section 3's classification, applied mechanically.
  std::cout << "\nmasking vs nonmasking (Section 3 classification):\n";
  for (Design d : {make_tmr(true).design, make_tmr(false).design,
                   make_atomic_action(2).design}) {
    StateSpace space(d.program, store_cfg.budget);
    std::cout << "  " << std::left << std::setw(20) << d.name << " -> "
              << to_string(classify_tolerance(space, d)) << "\n";
  }

  std::cout << "\nreading the table: 'none apply' + checker 'converges' "
               "marks the\nsufficient-condition gap the paper's Section 7 "
               "discusses. 'violated'\nrows are deliberately broken or "
               "fairness-needing designs; for those,\nthe weakly-fair verdict "
               "shows whether the paper's fair computation\nmodel (which the "
               "theorem validators assume) restores convergence —\nit does "
               "for distributed reset, not for the broken running example.\n";
  return finish(0);
}
