// Fault-span exploration: the Section 3 design flow made visible.
//
//   1. Take the atomic-action design (S ⊊ T ⊊ true) and *compute* the
//      fault-span its tolerated fault class induces; compare with the
//      hand-declared T; check convergence from it.
//   2. Show that an un-tolerated fault (writing the poison value) blows
//      the span up to states the program cannot repair.
//   3. Demonstrate the Section 7 refinements on the token ring: the
//      convergence stair T -> (non-increasing) -> S, and the restriction
//      of the diffusing constraint graph to satisfied regions.
//
// Run:  ./build/examples/fault_span_explorer
#include <iostream>

#include "cgraph/refine.hpp"
#include "checker/convergence_check.hpp"
#include "checker/fault_span.hpp"
#include "checker/stair.hpp"
#include "checker/state_space.hpp"
#include "protocols/atomic_action.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/token_ring.hpp"

using namespace nonmask;

int main() {
  std::cout << "== 1. induced fault-span of the atomic action ==\n";
  {
    auto aa = make_atomic_action(2);
    StateSpace space(aa.design.program);
    const auto span =
        compute_fault_span(space, aa.design.S(), aa.fault_actions);

    std::uint64_t declared_T = 0, in_S = 0;
    State s(aa.design.program.num_variables());
    const auto S = aa.design.S();
    const auto T = aa.design.T();
    for (std::uint64_t code = 0; code < space.size(); ++code) {
      space.decode_into(code, s);
      if (T(s)) ++declared_T;
      if (S(s)) ++in_S;
    }
    std::cout << "total states:            " << space.size() << "\n"
              << "states in S:             " << in_S << "\n"
              << "hand-declared T:         " << declared_T << "\n"
              << "induced span |reach(S)|: " << span.size()
              << (span.size() == declared_T ? "  (matches T exactly)" : "")
              << "\n";
    const auto conv =
        check_convergence(space, S, span.as_predicate());
    std::cout << "convergence from induced span: " << to_string(conv.verdict)
              << "\n";

    // Now add an un-tolerated fault: poison f.0 with the value 2.
    const VarId f0 = aa.flags[0];
    aa.design.program.add_action(Action(
        "poison", ActionKind::kFault, true_predicate(),
        [f0](State& st) { st.set(f0, 2); }, {f0}, {f0}, 0));
    StateSpace space2(aa.design.program);
    const auto wide = compute_fault_span(
        space2, aa.design.S(), {aa.design.program.num_actions() - 1});
    const auto conv2 =
        check_convergence(space2, aa.design.S(), wide.as_predicate());
    std::cout << "span with poison fault:  " << wide.size()
              << " states; convergence: " << to_string(conv2.verdict)
              << "  <- the fault class exceeds the design's tolerance\n\n";
  }

  std::cout << "== 2. the token ring's convergence stair (Section 7) ==\n";
  {
    const auto tr = make_token_ring_bounded(4, 3, true);
    StateSpace space(tr.design.program);
    auto non_increasing = [x = tr.x](const State& s) {
      for (std::size_t j = 0; j + 1 < x.size(); ++j) {
        if (s.get(x[j]) < s.get(x[j + 1])) return false;
      }
      return true;
    };
    const auto stair = check_stair(
        space, tr.design.T(),
        {StatePredicate{"non-increasing", non_increasing},
         StatePredicate{"S", tr.design.S()}});
    std::cout << "stair valid: " << (stair.valid ? "yes" : "no") << "\n";
    for (const auto& step : stair.steps) {
      std::cout << "  stage into '" << step.name << "': worst "
                << step.convergence.max_steps_to_S << " steps\n";
    }
    std::cout << "  summed bound: " << stair.total_worst_case << " steps\n\n";
  }

  std::cout << "== 3. restricting the diffusing constraint graph ==\n";
  {
    const auto dd = make_diffusing(RootedTree::chain(4), false);
    StateSpace space(dd.design.program);
    ValidationOptions opts;
    opts.space = &space;
    const auto cg = infer_constraint_graph(dd.design.program);
    std::cout << "full graph: " << cg.graph.graph.num_edges() << " edges\n";
    for (std::size_t upto = 1; upto <= dd.design.invariant.size(); ++upto) {
      std::vector<PredicateFn> held;
      for (std::size_t i = 0; i < upto; ++i) {
        held.push_back(dd.design.invariant.at(i).fn);
      }
      const auto restricted = restrict_constraint_graph(
          dd.design, cg.graph, p_all(held), opts);
      std::cout << "restricted to R.1..R." << upto << " held: "
                << restricted.graph.graph.num_edges()
                << " edges remain\n";
    }
  }
  return 0;
}
