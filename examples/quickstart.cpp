// Quickstart: the paper's Sections 4/6 running example, end to end.
//
//   1. Build the candidate triple for S = (x != y) /\ (x <= z).
//   2. Derive convergence actions (three variants from the paper).
//   3. Build the constraint graph (reproducing the paper's figure).
//   4. Validate with Theorems 1/2 and with the exact checker.
//   5. Simulate recovery from a corrupted state.
//
// Run:  ./build/examples/quickstart
#include <iostream>

#include "cgraph/theorems.hpp"
#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "core/describe.hpp"
#include "engine/simulator.hpp"
#include "protocols/running_example.hpp"
#include "sched/daemons.hpp"

using namespace nonmask;

namespace {

void examine(RunningExampleVariant variant) {
  const Design d = make_running_example(variant);
  std::cout << "==== " << d.name << " ====\n" << describe_design(d);

  // The constraint graph, inferred from the actions' read/write sets.
  const auto cg = infer_constraint_graph(d.program);
  if (!cg.ok) {
    std::cout << "constraint graph failed: " << cg.error << "\n";
    return;
  }
  std::cout << "constraint graph (" << to_string(classify(cg.graph))
            << "):\n"
            << cg.graph.graph.to_dot();

  // Mechanical theorem validation (exhaustive obligations).
  StateSpace space(d.program);
  ValidationOptions vopts;
  vopts.space = &space;
  std::cout << format_report(validate_design(d, vopts));

  // Ground truth: the exact checker.
  const auto exact = check_convergence(space, d.S(), d.T());
  std::cout << "exact checker: " << to_string(exact.verdict);
  if (exact.verdict == ConvergenceVerdict::kConverges) {
    std::cout << " (worst case " << exact.max_steps_to_S << " steps to S)";
  }
  std::cout << "\n";

  // Simulate recovery from one corrupted state.
  State start(d.program.num_variables());
  start.set(d.program.find_variable("x"), 5);
  start.set(d.program.find_variable("y"), 5);
  start.set(d.program.find_variable("z"), 2);
  RandomDaemon daemon(1);
  RunOptions ropts;
  ropts.max_steps = 50;
  ropts.record_trace = true;
  ropts.record_snapshots = true;
  const auto r = converge(d, start, daemon, ropts);
  std::cout << "simulation from {" << d.program.format_state(start)
            << "}: " << (r.converged ? "converged" : "did not converge")
            << " in " << r.steps << " steps\n"
            << r.trace.format(d.program, 10) << "\n";
}

}  // namespace

int main() {
  std::cout << "nonmask quickstart — the {x != y, x <= z} running example\n\n";
  examine(RunningExampleVariant::kWriteYZ);    // Section 4: out-tree
  examine(RunningExampleVariant::kWriteXBoth); // Section 6: livelocks
  examine(RunningExampleVariant::kDecreaseX);  // Section 6: Theorem 2 fix
  return 0;
}
