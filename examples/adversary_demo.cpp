// Adversarial fault-placement demo: pit the adversary (src/resilience/)
// against the benign random-placement baseline on the shipped stabilizing
// protocols, and print the worst placement it finds next to a convergence-
// time histogram of both distributions.
//
// Usage:  adversary_demo [design] [k] [seed] [trials]
//   design   ring | tree | both   (default: both)
//   k        corruption budget, 0 = all variables   (default: 2)
//   seed     adversary + baseline master seed       (default: 1)
//   trials   baseline sample size                   (default: 64)
//
// Flags:
//   --worst-out=PATH   write the worst traces found as one JSON document
//                      (uploaded as a CI artifact by .github/workflows)
//   --state-budget=N   exhaustive-mode cutoff: the adversary switches to
//                      hill-climbing above N states (default from
//                      NONMASK_STATE_BUDGET, else 2^20)
//   --dashboard-out=PATH  self-contained HTML dashboard from the telemetry
//                      heartbeat series (in-memory sampler unless
//                      NONMASK_TELEMETRY is set)
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "obs/dashboard.hpp"
#include "obs/telemetry.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/token_ring.hpp"
#include "resilience/adversary.hpp"
#include "store/config.hpp"
#include "store/facade.hpp"

using namespace nonmask;

namespace {

bool flag_value(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

std::uint64_t median_of(std::vector<std::uint64_t> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

/// One-row ASCII histogram: bucket counts rendered as bar lengths.
void print_histogram(const char* label,
                     const std::vector<std::uint64_t>& samples,
                     std::uint64_t lo, std::uint64_t hi) {
  constexpr int kBuckets = 8;
  constexpr int kBarWidth = 32;
  const std::uint64_t span = std::max<std::uint64_t>(hi - lo, 1);
  std::vector<int> counts(kBuckets, 0);
  for (std::uint64_t s : samples) {
    const std::uint64_t clamped = std::min(std::max(s, lo), hi);
    int b = static_cast<int>(((clamped - lo) * kBuckets) / (span + 1));
    counts[std::min(b, kBuckets - 1)] += 1;
  }
  const int peak = *std::max_element(counts.begin(), counts.end());
  std::cout << "  " << label << " (n=" << samples.size() << "):\n";
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t from = lo + (span * static_cast<std::uint64_t>(b)) /
                                        kBuckets;
    const std::uint64_t to =
        lo + (span * static_cast<std::uint64_t>(b + 1)) / kBuckets;
    const int bar =
        peak == 0 ? 0 : (counts[b] * kBarWidth + peak - 1) / peak;
    std::cout << "    [" << std::setw(6) << from << "," << std::setw(6) << to
              << ") " << std::setw(4) << counts[b] << " "
              << std::string(static_cast<std::size_t>(bar), '#') << "\n";
  }
}

struct DemoResult {
  std::string json;
};

DemoResult run_demo(const Design& design, const AdversaryOptions& opts,
                    std::size_t trials) {
  std::cout << "== " << design.name << " ==\n";
  const AdversaryResult result = find_worst_placement(design, opts);
  const auto baseline = random_placement_baseline(design, opts, trials);

  std::cout << "  mode: " << (result.exhaustive ? "exhaustive-greedy"
                                                : "hill-climb")
            << ", " << result.evaluations << " placements scored\n";
  std::cout << "  worst placement (at step " << result.placement.at_step
            << "):";
  for (std::size_t i = 0; i < result.placement.targets.size(); ++i) {
    std::cout << " " << design.program.variable(result.placement.targets[i]).name
              << ":=" << result.placement.values[i];
  }
  std::cout << "\n";
  if (result.divergence_found) {
    std::cout << "  DIVERGENCE: some schedule never converges from it\n";
  } else {
    std::cout << "  worst-case convergence: " << result.worst_case_steps
              << " steps"
              << (result.exhaustive ? " (exact, central daemon)" : " (observed)")
              << "\n";
  }
  std::cout << "  observed replay (random daemon): "
            << (result.observed.converged
                    ? std::to_string(result.observed.steps) + " steps"
                    : std::string("did not converge"))
            << "\n";

  const std::uint64_t median = median_of(baseline);
  std::cout << "  random-placement baseline median: " << median << " steps"
            << (result.worst_case_steps > median ? "  (adversary wins)" : "")
            << "\n";

  const std::uint64_t hi =
      std::max(result.worst_case_steps,
               *std::max_element(baseline.begin(), baseline.end()));
  print_histogram("baseline convergence steps", baseline, 0, hi);
  print_histogram("adversary (worst case)",
                  {result.worst_case_steps}, 0, hi);
  std::cout << "\n";
  return {worst_trace_json(design, result)};
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> pos;
  std::string worst_out, state_budget, dashboard_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: adversary_demo [ring|tree|both] [k] [seed] "
                   "[trials] [--worst-out=PATH] [--state-budget=N]\n"
                   "       [--dashboard-out=PATH]\n";
      return 0;
    } else if (flag_value(arg, "--worst-out", &value)) {
      worst_out = value;
    } else if (flag_value(arg, "--state-budget", &value)) {
      state_budget = value;
    } else if (flag_value(arg, "--dashboard-out", &value)) {
      dashboard_out = value;
    } else {
      pos.push_back(arg);
    }
  }
  obs::Telemetry::start_from_env();
  if (!dashboard_out.empty() && !obs::Telemetry::running()) {
    obs::Telemetry::start({});
  }
  const std::string which = pos.size() > 0 ? pos[0] : "both";
  AdversaryOptions opts;
  // The flag (or NONMASK_STATE_BUDGET) raises the cutoff below which the
  // adversary runs the exact exhaustive analysis instead of hill-climbing.
  // Only an explicit setting overrides the adversary's own default.
  if (!state_budget.empty()) {
    opts.exhaustive_budget = std::strtoull(state_budget.c_str(), nullptr, 10);
  } else if (std::getenv("NONMASK_STATE_BUDGET") != nullptr) {
    opts.exhaustive_budget = store::StoreConfig::from_env().budget;
  }
  opts.budget_k =
      pos.size() > 1 ? static_cast<std::size_t>(std::atoll(pos[1].c_str()))
                     : 2;
  opts.seed = pos.size() > 2
                  ? static_cast<std::uint64_t>(std::atoll(pos[2].c_str()))
                  : 1;
  const std::size_t trials =
      pos.size() > 3 ? static_cast<std::size_t>(std::atoll(pos[3].c_str()))
                     : 64;
  if (which != "ring" && which != "tree" && which != "both") {
    std::cerr << "unknown design '" << which << "' (want ring | tree | both)\n";
    return 2;
  }

  std::vector<std::string> artifacts;
  if (which == "ring" || which == "both") {
    artifacts.push_back(
        run_demo(make_dijkstra_ring(6, 7).design, opts, trials).json);
  }
  if (which == "tree" || which == "both") {
    artifacts.push_back(
        run_demo(make_diffusing(RootedTree::balanced(7, 2), true).design, opts,
                 trials)
            .json);
  }

  if (!worst_out.empty()) {
    std::ofstream out(worst_out);
    if (!out) {
      std::cerr << "cannot open " << worst_out << " for writing\n";
      return 2;
    }
    // Record the backend + budget the run used so the artifact is
    // self-describing (mirrors the obs run reports elsewhere).
    const auto store_cfg = store::StoreConfig::from_env();
    out << "{\"store_backend\":\"" << store::to_string(store_cfg.backend)
        << "\",\"state_budget\":" << opts.exhaustive_budget;
    if (const auto reason = store::backend_fallback_reason_for_size(
            store_cfg, opts.exhaustive_budget)) {
      out << ",\"backend_fallback_reason\":\"" << *reason << "\"";
    }
    out << ",\"worst_traces\":[";
    for (std::size_t i = 0; i < artifacts.size(); ++i) {
      if (i > 0) out << ",";
      out << artifacts[i];
    }
    out << "]}\n";
    std::cout << artifacts.size() << " worst trace(s) written to " << worst_out
              << "\n";
  }
  obs::Telemetry::stop();
  if (!dashboard_out.empty()) {
    obs::DashboardSpec spec;
    spec.title = "adversary_demo: " + which;
    spec.subtitle = "corruption budget k=" + std::to_string(opts.budget_k) +
                    ", seed " + std::to_string(opts.seed) + ", " +
                    std::to_string(trials) + " baseline trials";
    spec.summary = {
        {"designs", which},
        {"corruption budget k", std::to_string(opts.budget_k)},
        {"seed", std::to_string(opts.seed)},
        {"baseline trials", std::to_string(trials)},
        {"exhaustive budget", std::to_string(opts.exhaustive_budget)},
    };
    spec.samples = obs::Telemetry::samples();
    obs::write_dashboard_file(dashboard_out, spec);
    std::cout << "dashboard written to " << dashboard_out << "\n";
  }
  return 0;
}
