// Byzantine containment probe: measure the containment radius of the
// shipped stabilizing protocols under permanently-adversarial processes
// (checker/containment.hpp), hunt the worst Byzantine placement
// (resilience/adversary.hpp), and triage every certificate against the
// restricted fault models (synth/triage.hpp).
//
// The headline contrast is the paper-era folklore made executable: the BFS
// spanning tree *contains* a Byzantine leaf far from the root (finite
// radius, the Dubois–Masuzawa–Tixeuil min+1 shape), while Dijkstra's token
// ring cannot contain any Byzantine process at all — a single adversary
// reaches every correct process (radius == horizon).
//
// Usage:  containment_probe [design] [m] [seed]
//   design   tree | ring | env | all   (default: all)
//   m        Byzantine set size        (default: 1)
//   seed     legitimate-state / search seed (default: 1)
//
// Flags:
//   --containment-out=PATH  deterministic JSON artifact (benchmark reports,
//                           worst placements, triage table); CI diffs it
//                           across NONMASK_THREADS=1/2/8
//   --report-out=PATH       RunReport JSON (triage + containment sections,
//                           metrics snapshot, timestamps)
//   --dashboard-out=PATH    self-contained HTML dashboard with the triage
//                           table rendered as a card
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "checker/containment.hpp"
#include "checker/restricted.hpp"
#include "obs/dashboard.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "protocols/spanning_tree.hpp"
#include "protocols/token_ring.hpp"
#include "resilience/adversary.hpp"
#include "store/config.hpp"
#include "store/facade.hpp"
#include "synth/triage.hpp"

using namespace nonmask;

namespace {

bool flag_value(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

std::string join_ints(const std::vector<int>& xs) {
  std::string out = "{";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(xs[i]);
  }
  return out + "}";
}

/// The benchmark placement certificates are judged against (mirrors
/// synth/triage.cpp): the m variable-owning processes farthest from
/// process 0 in the communication graph, ties to the smaller id.
std::vector<int> farthest_processes(const Program& program, std::size_t m) {
  const UndirectedGraph g = communication_graph(program);
  const std::vector<int> dist = distances_from(g, {0});
  std::vector<int> owners;
  for (int p = 1; p < g.size(); ++p) {
    for (const auto& v : program.variables()) {
      if (v.process == p) {
        owners.push_back(p);
        break;
      }
    }
  }
  std::stable_sort(owners.begin(), owners.end(), [&dist](int a, int b) {
    return dist[static_cast<std::size_t>(a)] >
           dist[static_cast<std::size_t>(b)];
  });
  if (owners.size() > m) owners.resize(m);
  std::sort(owners.begin(), owners.end());
  return owners;
}

struct ProbeArtifacts {
  std::vector<std::string> benchmarks;   // containment_to_json per design
  std::vector<std::string> placements;   // byzantine_placement_json per design
  std::vector<synth::TriageEntry> triage;
};

void probe(const Design& design, std::size_t m, std::uint64_t seed,
           ProbeArtifacts* art) {
  std::cout << "== " << design.name << " ==\n";

  AdversaryOptions leg_opts;
  leg_opts.seed = seed;
  const State legitimate = legitimate_state(design, leg_opts);
  ContainmentOptions copts;
  copts.config = store::StoreConfig::from_env();

  // 1. Benchmark: the far placement a containing protocol must shrug off.
  const std::vector<int> bench = farthest_processes(design.program, m);
  const ContainmentReport rep =
      measure_containment(design.program, bench, legitimate, copts);
  std::cout << "  benchmark placement " << join_ints(bench) << ": radius "
            << rep.radius << (rep.contained ? " < horizon " : " reaches horizon ")
            << rep.horizon << " -> "
            << (rep.contained ? "CONTAINED" : "not contained") << "\n";
  std::cout << "    " << rep.reachable_states << " composed states, "
            << rep.levels << " BFS levels, damage settled by level "
            << rep.time_to_containment << "\n";
  art->benchmarks.push_back(containment_to_json(design.program, rep));

  // 2. Adversary: the placement maximizing the radius.
  ByzantinePlacementOptions bopts;
  bopts.num_byzantine = m;
  bopts.seed = seed;
  bopts.containment = copts;
  const ByzantinePlacementResult worst =
      find_worst_byzantine_placement(design, bopts);
  std::cout << "  worst placement " << join_ints(worst.byzantine) << " ("
            << (worst.exhaustive ? "exhaustive" : "hill-climb") << ", "
            << worst.evaluations << " sets scored)";
  if (worst.report_exact) {
    std::cout << ": radius " << worst.report.radius << " / horizon "
              << worst.report.horizon;
    if (worst.convergence_destroyed) {
      std::cout << " -- damage reaches the farthest correct process";
    }
  }
  std::cout << "\n";
  art->placements.push_back(byzantine_placement_json(design, worst));

  // 3. Triage: the certificate's fate per fault regime.
  synth::TriageOptions topts;
  topts.num_byzantine = m;
  topts.seed = seed;
  topts.byzantine = bopts;
  const std::vector<synth::TriageEntry> rows =
      synth::triage_design(design, topts);
  for (const synth::TriageEntry& row : rows) {
    std::cout << "  triage[" << to_string(row.regime)
              << "] " << synth::to_string(row.verdict) << ": " << row.detail
              << "\n";
  }
  art->triage.insert(art->triage.end(), rows.begin(), rows.end());
  std::cout << "\n";
}

std::string json_array(const std::vector<std::string>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ",";
    out += values[i];
  }
  return out + "]";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> pos;
  std::string containment_out, report_out, dashboard_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: containment_probe [tree|ring|env|all] [m] [seed]\n"
                   "       [--containment-out=PATH] [--report-out=PATH]\n"
                   "       [--dashboard-out=PATH]\n";
      return 0;
    } else if (flag_value(arg, "--containment-out", &value)) {
      containment_out = value;
    } else if (flag_value(arg, "--report-out", &value)) {
      report_out = value;
    } else if (flag_value(arg, "--dashboard-out", &value)) {
      dashboard_out = value;
    } else {
      pos.push_back(arg);
    }
  }
  obs::Telemetry::start_from_env();
  if (!dashboard_out.empty() && !obs::Telemetry::running()) {
    obs::Telemetry::start({});
  }
  const std::string which = pos.size() > 0 ? pos[0] : "all";
  const std::size_t m =
      pos.size() > 1 ? static_cast<std::size_t>(std::atoll(pos[1].c_str()))
                     : 1;
  const std::uint64_t seed =
      pos.size() > 2 ? static_cast<std::uint64_t>(std::atoll(pos[2].c_str()))
                     : 1;
  if (which != "tree" && which != "ring" && which != "env" && which != "all") {
    std::cerr << "unknown design '" << which
              << "' (want tree | ring | env | all)\n";
    return 2;
  }

  ProbeArtifacts art;
  if (which == "tree" || which == "all") {
    probe(make_spanning_tree(UndirectedGraph::path(5), 0).design, m, seed,
          &art);
  }
  if (which == "ring" || which == "all") {
    probe(make_dijkstra_ring(5, 5).design, m, seed, &art);
  }
  if (which == "env" || which == "all") {
    probe(make_spanning_tree_with_environment(UndirectedGraph::path(4), 0)
              .design,
          m, seed, &art);
  }

  const std::string triage_json = synth::triage_to_json(art.triage);
  if (!containment_out.empty()) {
    std::ofstream out(containment_out);
    if (!out) {
      std::cerr << "cannot open " << containment_out << " for writing\n";
      return 2;
    }
    // Deliberately timestamp-free: the CI smoke diffs this artifact across
    // NONMASK_THREADS=1/2/8, so every byte must be thread-count invariant.
    const auto store_cfg = store::StoreConfig::from_env();
    out << "{\"tool\":\"containment_probe\",\"designs\":\"" << which
        << "\",\"num_byzantine\":" << m << ",\"seed\":" << seed
        << ",\"store_backend\":\"" << store::to_string(store_cfg.backend)
        << "\",\"benchmarks\":" << json_array(art.benchmarks)
        << ",\"worst_placements\":" << json_array(art.placements)
        << ",\"triage\":" << triage_json << "}\n";
    std::cout << "containment artifact written to " << containment_out << "\n";
  }
  if (!report_out.empty()) {
    obs::RunReport report("containment_probe", which);
    report.add_number("num_byzantine", static_cast<std::uint64_t>(m));
    report.add_number("seed", seed);
    report.add("benchmarks", json_array(art.benchmarks));
    report.add("worst_placements", json_array(art.placements));
    report.add("triage", triage_json);
    std::ofstream out(report_out);
    if (!out) {
      std::cerr << "cannot open " << report_out << " for writing\n";
      return 2;
    }
    report.write(out);
    std::cout << "run report written to " << report_out << "\n";
  }
  obs::Telemetry::stop();
  if (!dashboard_out.empty()) {
    obs::DashboardSpec spec;
    spec.title = "containment_probe: " + which;
    spec.subtitle = "m=" + std::to_string(m) + " Byzantine, seed " +
                    std::to_string(seed);
    spec.summary = {
        {"designs", which},
        {"byzantine set size", std::to_string(m)},
        {"seed", std::to_string(seed)},
        {"triage rows", std::to_string(art.triage.size())},
    };
    spec.tables = {synth::triage_dashboard_table(art.triage)};
    spec.samples = obs::Telemetry::samples();
    obs::write_dashboard_file(dashboard_out, spec);
    std::cout << "dashboard written to " << dashboard_out << "\n";
  }
  return 0;
}
