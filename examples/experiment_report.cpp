// Convergence-time distributions across protocols and daemons, via the
// experiment harness: the kind of table EXPERIMENTS.md reports, generated
// live.
//
// Usage:  experiment_report [trials]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <memory>

#include "engine/experiment.hpp"
#include "protocols/coloring.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/independent_set.hpp"
#include "protocols/leader_election.hpp"
#include "protocols/matching.hpp"
#include "protocols/spanning_tree.hpp"
#include "protocols/token_ring.hpp"
#include "sched/daemons.hpp"

using namespace nonmask;

namespace {

void row(const char* name, const Design& d, std::size_t trials) {
  ConvergenceExperiment config;
  config.trials = trials;
  config.seed = 1;
  config.max_steps = 2'000'000;
  const auto r = run_experiment(d, config);
  std::cout << std::left << std::setw(26) << name << std::right
            << std::setw(9) << static_cast<int>(100 * r.converged_fraction)
            << "%" << std::setw(11) << r.steps.mean << std::setw(10)
            << std::fixed << std::setprecision(1) << r.steps.stddev
            << std::defaultfloat << std::setprecision(6) << std::setw(9)
            << r.steps.p50 << std::setw(9) << r.steps.p95 << std::setw(9)
            << r.steps.max << std::setw(10) << r.rounds.mean << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t trials =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 200;
  std::cout << "convergence from uniform random corruption, random central "
               "daemon, "
            << trials << " trials\n\n"
            << std::left << std::setw(26) << "protocol" << std::right
            << std::setw(10) << "conv%" << std::setw(11) << "steps"
            << std::setw(10) << "stddev" << std::setw(9) << "p50"
            << std::setw(9) << "p95" << std::setw(9) << "max" << std::setw(10)
            << "rounds\n"
            << std::string(94, '-') << "\n";

  Rng rng(7);
  row("diffusing (binary, 63)",
      make_diffusing(RootedTree::balanced(63, 2), true).design, trials);
  row("diffusing (chain, 63)",
      make_diffusing(RootedTree::chain(63), true).design, trials);
  row("dijkstra ring (64)", make_dijkstra_ring(64, 65).design, trials);
  row("bounded ring (16)",
      make_token_ring_bounded(16, 15, true).design, trials);
  row("spanning tree (64)",
      make_spanning_tree(UndirectedGraph::random_connected(64, 64, rng))
          .design,
      trials);
  row("coloring (64)",
      make_coloring(UndirectedGraph::random_connected(64, 128, rng)).design,
      trials);
  row("matching (64)",
      make_matching(UndirectedGraph::random_connected(64, 96, rng)).design,
      trials);
  row("independent set (64)",
      make_independent_set(UndirectedGraph::random_connected(64, 96, rng))
          .design,
      trials);
  row("leader election (64)", make_leader_election(64).design, trials);

  std::cout << "\nsteps = daemon selections until S; rounds = asynchronous "
               "rounds.\n";
  return 0;
}
