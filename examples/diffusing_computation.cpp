// Stabilizing diffusing computation (Section 5.1) on a balanced binary
// tree, with live wave rendering and mid-run fault injection.
//
// Usage:  diffusing_computation [num_nodes] [steps]
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "engine/simulator.hpp"
#include "faults/fault.hpp"
#include "faults/injector.hpp"
#include "protocols/diffusing.hpp"
#include "sched/daemons.hpp"

using namespace nonmask;

namespace {

/// Render the tree state as one line: node colors in BFS order,
/// R = red, g = green, with the session number as a suffix bit.
std::string render(const DiffusingDesign& dd, const RootedTree& tree,
                   const State& s) {
  std::string out;
  for (int j : tree.bfs_order()) {
    out += s.get(dd.color[static_cast<std::size_t>(j)]) == kRed ? 'R' : 'g';
    out += s.get(dd.session[static_cast<std::size_t>(j)]) == 1 ? '\'' : ' ';
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 15;
  const std::size_t steps = argc > 2
                                ? static_cast<std::size_t>(std::atoll(argv[2]))
                                : 120;

  const auto tree = RootedTree::balanced(n, 2);
  const auto dd = make_diffusing(tree, /*combined=*/true);
  const Design& d = dd.design;
  std::cout << "diffusing computation on a balanced binary tree of " << n
            << " nodes (height " << tree.height() << ")\n"
            << "legend: R/g = red/green, ' marks session bit 1; faults "
               "corrupt 3 random nodes\n\n";

  auto inj = FaultInjector::periodic(
      std::make_shared<CorruptKProcesses>(3), 40, 2, 99);
  RoundRobinDaemon daemon;
  Simulator sim(d.program, daemon);

  State s = d.program.initial_state();
  const auto S = d.S();
  RunOptions opts;
  opts.max_steps = 1;
  for (std::size_t step = 0; step < steps; ++step) {
    inj(step, d.program, s);
    std::cout << (S(s) ? "  " : "! ") << render(dd, tree, s) << "  ("
              << d.invariant.violation_count(s) << " constraints violated)\n";
    s = sim.run(s, opts).final_state;
  }
  std::cout << "\nfinal state " << (S(s) ? "satisfies" : "violates")
            << " S after " << inj.faults_injected() << " injected faults\n";
  return 0;
}
