// Dijkstra's K-state token ring (Section 7.1), with privilege trace and a
// burst of state corruption halfway through — watch the extra "tokens"
// appear and die out.
//
// Usage:  token_ring [num_nodes] [steps]
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "engine/simulator.hpp"
#include "faults/fault.hpp"
#include "protocols/token_ring.hpp"
#include "sched/daemons.hpp"

using namespace nonmask;

namespace {

std::string render(const TokenRingDesign& tr, const State& s) {
  std::string out;
  const int n = static_cast<int>(tr.x.size());
  for (int j = 0; j < n; ++j) {
    bool privileged;
    if (j == 0) {
      privileged = s.get(tr.x[0]) ==
                   s.get(tr.x[static_cast<std::size_t>(n - 1)]);
    } else {
      privileged = s.get(tr.x[static_cast<std::size_t>(j)]) !=
                   s.get(tr.x[static_cast<std::size_t>(j - 1)]);
    }
    out += privileged ? '*' : '.';
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 12;
  const std::size_t steps = argc > 2
                                ? static_cast<std::size_t>(std::atoll(argv[2]))
                                : 100;
  const auto tr = make_dijkstra_ring(n, n + 1);
  const Design& d = tr.design;
  std::cout << "Dijkstra K-state token ring, " << n << " nodes, K = " << n + 1
            << "\nlegend: * = privileged node; fault at step " << steps / 2
            << " corrupts every node\n\n";

  RandomDaemon daemon(7);
  Simulator sim(d.program, daemon);
  CorruptKVariables blast(static_cast<std::size_t>(n));
  Rng fault_rng(3);

  State s = d.program.initial_state();
  const auto S = d.S();
  RunOptions opts;
  opts.max_steps = 1;
  for (std::size_t step = 0; step < steps; ++step) {
    if (step == steps / 2) {
      blast.strike(d.program, s, fault_rng);
      std::cout << "--- fault: all nodes corrupted ---\n";
    }
    std::cout << (S(s) ? "  " : "! ") << render(tr, s) << "  ("
              << tr.privileges(s) << " privilege"
              << (tr.privileges(s) == 1 ? "" : "s") << ")\n";
    s = sim.run(s, opts).final_state;
  }
  std::cout << "\nfinal state " << (S(s) ? "has exactly one token"
                                         : "is still repairing")
            << "\n";
  return 0;
}
