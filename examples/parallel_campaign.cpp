// Parallel campaign CLI: run a seeded trial campaign for a shipped design
// across worker threads and optionally stream per-trial records to JSONL
// for offline analysis. Results are bit-identical at any thread count (see
// parallel/campaign.hpp), so a campaign is reproducible from its design
// name, seed, and trial count alone.
//
// Usage:  parallel_campaign [design] [trials] [threads] [seed] [jsonl-path]
//   design   diffusing | chain | dijkstra | bounded | coloring  (default: diffusing)
//   trials   number of trials                    (default: 200)
//   threads  0 = NONMASK_THREADS env / hardware  (default: 0)
//   seed     master seed                         (default: 1)
//   jsonl    output path for per-trial records   (default: none)
//
// Observability flags (may be mixed with the positional arguments):
//   --trace-out=PATH    Chrome trace-event JSON of the run (per-trial spans)
//   --metrics-out=PATH  metrics-registry snapshot JSON
//   --report-out=PATH   self-describing run-report JSON
//   --dashboard-out=PATH  self-contained HTML dashboard from the telemetry
//                         heartbeat series (in-memory sampler unless
//                         NONMASK_TELEMETRY is set)
//   --progress          rate-limited progress lines on stderr
//   --threads=N         same as the positional threads argument
//
// Resilience flags (src/resilience/):
//   --checkpoint=PATH   JSONL checkpoint journal, flushed per trial
//   --resume            replay the journal's valid prefix, run the rest
//   --deadline-ms=N     per-trial watchdog deadline (0 = off)
//   --retries=N         retries for trials that throw
//   --backoff-ms=N      base backoff before retry r (doubles each retry)
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "obs/dashboard.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "parallel/campaign.hpp"
#include "parallel/thread_pool.hpp"
#include "protocols/coloring.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/token_ring.hpp"
#include "store/config.hpp"
#include "util/rng.hpp"

using namespace nonmask;

namespace {

Design make_design(const std::string& name) {
  if (name == "diffusing") {
    return make_diffusing(RootedTree::balanced(31, 2), true).design;
  }
  if (name == "chain") {
    return make_diffusing(RootedTree::chain(32), true).design;
  }
  if (name == "dijkstra") {
    return make_dijkstra_ring(32, 33).design;
  }
  if (name == "bounded") {
    return make_token_ring_bounded(16, 15, true).design;
  }
  if (name == "coloring") {
    Rng rng(7);
    return make_coloring(UndirectedGraph::random_connected(48, 96, rng))
        .design;
  }
  std::cerr << "unknown design '" << name
            << "' (want diffusing | chain | dijkstra | bounded | coloring)\n";
  std::exit(2);
}

void print_stats(const char* label, const SampleStats& s) {
  std::cout << "  " << std::left << std::setw(7) << label << std::right
            << "  mean " << std::setw(10) << s.mean << "  stddev "
            << std::setw(10) << s.stddev << "  p50 " << std::setw(8) << s.p50
            << "  p95 " << std::setw(8) << s.p95 << "  max " << std::setw(8)
            << s.max << "  sum " << s.sum << "\n";
}

bool flag_value(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Split --flags from the positional arguments so existing invocations
  // (tests, EXPERIMENTS.md recipes) keep working unchanged.
  std::vector<std::string> pos;
  std::string trace_out, metrics_out, report_out, dashboard_out, flag_threads;
  std::string checkpoint, deadline_ms, retries, backoff_ms;
  bool progress = false;
  bool resume = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: parallel_campaign [design] [trials] [threads] "
                   "[seed] [jsonl-path]\n"
                   "       [--threads=N] [--trace-out=PATH] "
                   "[--metrics-out=PATH] [--report-out=PATH]\n"
                   "       [--dashboard-out=PATH] [--progress]\n"
                   "       [--checkpoint=PATH] [--resume] [--deadline-ms=N] "
                   "[--retries=N] [--backoff-ms=N]\n";
      return 0;
    } else if (arg == "--progress") {
      progress = true;
    } else if (arg == "--resume") {
      resume = true;
    } else if (flag_value(arg, "--checkpoint", &value)) {
      checkpoint = value;
    } else if (flag_value(arg, "--deadline-ms", &value)) {
      deadline_ms = value;
    } else if (flag_value(arg, "--retries", &value)) {
      retries = value;
    } else if (flag_value(arg, "--backoff-ms", &value)) {
      backoff_ms = value;
    } else if (flag_value(arg, "--threads", &value)) {
      flag_threads = value;
    } else if (flag_value(arg, "--trace-out", &value)) {
      trace_out = value;
    } else if (flag_value(arg, "--metrics-out", &value)) {
      metrics_out = value;
    } else if (flag_value(arg, "--report-out", &value)) {
      report_out = value;
    } else if (flag_value(arg, "--dashboard-out", &value)) {
      dashboard_out = value;
    } else {
      pos.push_back(arg);
    }
  }

  const std::string name = pos.size() > 0 ? pos[0] : "diffusing";
  ConvergenceExperiment config;
  config.trials =
      pos.size() > 1 ? static_cast<std::size_t>(std::atoll(pos[1].c_str()))
                     : 200;
  CampaignOptions opts;
  opts.threads =
      pos.size() > 2 ? static_cast<unsigned>(std::atoi(pos[2].c_str())) : 0;
  if (!flag_threads.empty()) {
    opts.threads = static_cast<unsigned>(std::atoi(flag_threads.c_str()));
  }
  config.seed = pos.size() > 3
                    ? static_cast<std::uint64_t>(std::atoll(pos[3].c_str()))
                    : 1;
  config.max_steps = 2'000'000;

  opts.checkpoint = checkpoint;
  opts.resume = resume;
  if (resume && checkpoint.empty()) {
    std::cerr << "--resume requires --checkpoint=PATH\n";
    return 2;
  }
  if (!deadline_ms.empty()) {
    opts.policy.deadline =
        std::chrono::milliseconds(std::atoll(deadline_ms.c_str()));
  }
  if (!retries.empty()) {
    opts.policy.max_retries =
        static_cast<std::size_t>(std::atoll(retries.c_str()));
  }
  if (!backoff_ms.empty()) {
    opts.policy.backoff =
        std::chrono::milliseconds(std::atoll(backoff_ms.c_str()));
  }
  // NONMASK_STORE_BACKEND=store routes the trial loop through the
  // frontier engine (parallel/campaign.hpp); records stay byte-identical.
  opts.store = store::StoreConfig::from_env();

  if (!trace_out.empty()) obs::Trace::set_enabled(true);
  if (!metrics_out.empty() || !report_out.empty()) {
    obs::Metrics::set_enabled(true);
  }
  if (progress) obs::Progress::enable(&std::cerr);
  obs::Telemetry::start_from_env();
  if (!dashboard_out.empty() && !obs::Telemetry::running()) {
    obs::Telemetry::start({});
  }

  std::ofstream jsonl_file;
  if (pos.size() > 4) {
    jsonl_file.open(pos[4]);
    if (!jsonl_file) {
      std::cerr << "cannot open " << pos[4] << " for writing\n";
      return 2;
    }
    opts.jsonl = &jsonl_file;
  }

  const Design design = make_design(name);
  const unsigned threads =
      opts.threads == 0 ? default_threads() : opts.threads;
  std::cout << "campaign: " << design.name << ", " << config.trials
            << " trials, seed " << config.seed << ", " << threads
            << " thread(s)\n";

  const auto results = run_campaign(design, config, opts);
  if (opts.resume) {
    std::cout << "resumed: " << results.resumed_trials
              << " trial(s) replayed from " << checkpoint << "\n";
  }
  if (results.timed_out > 0 || results.failed > 0) {
    std::cout << "degraded: " << results.timed_out << " timed out, "
              << results.failed << " failed\n";
  }
  std::cout << "converged: " << std::fixed << std::setprecision(1)
            << 100.0 * results.aggregate.converged_fraction << "% ("
            << results.aggregate.steps.count << "/" << config.trials
            << " trials)\n"
            << std::defaultfloat << std::setprecision(6);
  print_stats("steps", results.aggregate.steps);
  print_stats("rounds", results.aggregate.rounds);
  print_stats("moves", results.aggregate.moves);
  if (opts.jsonl != nullptr) {
    std::cout << config.trials << " records written to " << pos[4] << "\n";
  }

  // Final heartbeat first, so the dashboard and report see the completed
  // trial counters.
  obs::Telemetry::stop();

  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::cerr << "cannot open " << trace_out << " for writing\n";
      return 2;
    }
    obs::Trace::write_chrome_trace(out);
    std::cout << obs::Trace::event_count() << " trace events written to "
              << trace_out << "\n";
  }
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::cerr << "cannot open " << metrics_out << " for writing\n";
      return 2;
    }
    out << obs::metrics_to_json() << "\n";
  }
  if (!report_out.empty()) {
    std::ofstream out(report_out);
    if (!out) {
      std::cerr << "cannot open " << report_out << " for writing\n";
      return 2;
    }
    obs::RunReport report("parallel_campaign", design.name);
    report.add_number("trials", std::uint64_t{config.trials});
    report.add_number("seed", config.seed);
    // Record the store configuration active for this run, so a report is
    // reproducible without knowing the environment it ran under.
    report.add_text("store_backend", store::to_string(opts.store.backend));
    report.add_number("state_budget", opts.store.budget);
    // Trial routing never falls back: the frontier engine only schedules
    // trial indices, so any backend serves any campaign size.
    report.add_text("backend_fallback_reason", "");
    report.add("campaign", obs::to_json(results.aggregate));
    report.write(out);
  }
  if (!dashboard_out.empty()) {
    obs::DashboardSpec spec;
    spec.title = "parallel_campaign: " + design.name;
    spec.subtitle = std::to_string(config.trials) + " trials, seed " +
                    std::to_string(config.seed) + ", " +
                    std::to_string(threads) + " thread(s), backend " +
                    store::to_string(opts.store.backend);
    spec.summary = {
        {"design", design.name},
        {"trials", std::to_string(config.trials)},
        {"seed", std::to_string(config.seed)},
        {"threads", std::to_string(threads)},
        {"store backend", store::to_string(opts.store.backend)},
        {"resumed trials", std::to_string(results.resumed_trials)},
        {"timed out", std::to_string(results.timed_out)},
        {"failed", std::to_string(results.failed)},
    };
    spec.samples = obs::Telemetry::samples();
    obs::write_dashboard_file(dashboard_out, spec);
    std::cout << "dashboard written to " << dashboard_out << "\n";
  }
  if (progress) obs::Progress::disable();
  return 0;
}
