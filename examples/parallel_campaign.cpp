// Parallel campaign CLI: run a seeded trial campaign for a shipped design
// across worker threads and optionally stream per-trial records to JSONL
// for offline analysis. Results are bit-identical at any thread count (see
// parallel/campaign.hpp), so a campaign is reproducible from its design
// name, seed, and trial count alone.
//
// Usage:  parallel_campaign [design] [trials] [threads] [seed] [jsonl-path]
//   design   diffusing | chain | dijkstra | bounded | coloring  (default: diffusing)
//   trials   number of trials                    (default: 200)
//   threads  0 = NONMASK_THREADS env / hardware  (default: 0)
//   seed     master seed                         (default: 1)
//   jsonl    output path for per-trial records   (default: none)
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>

#include "parallel/campaign.hpp"
#include "parallel/thread_pool.hpp"
#include "protocols/coloring.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/token_ring.hpp"
#include "util/rng.hpp"

using namespace nonmask;

namespace {

Design make_design(const std::string& name) {
  if (name == "diffusing") {
    return make_diffusing(RootedTree::balanced(31, 2), true).design;
  }
  if (name == "chain") {
    return make_diffusing(RootedTree::chain(32), true).design;
  }
  if (name == "dijkstra") {
    return make_dijkstra_ring(32, 33).design;
  }
  if (name == "bounded") {
    return make_token_ring_bounded(16, 15, true).design;
  }
  if (name == "coloring") {
    Rng rng(7);
    return make_coloring(UndirectedGraph::random_connected(48, 96, rng))
        .design;
  }
  std::cerr << "unknown design '" << name
            << "' (want diffusing | chain | dijkstra | bounded | coloring)\n";
  std::exit(2);
}

void print_stats(const char* label, const SampleStats& s) {
  std::cout << "  " << std::left << std::setw(7) << label << std::right
            << "  mean " << std::setw(10) << s.mean << "  stddev "
            << std::setw(10) << s.stddev << "  p50 " << std::setw(8) << s.p50
            << "  p95 " << std::setw(8) << s.p95 << "  max " << std::setw(8)
            << s.max << "  sum " << s.sum << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "diffusing";
  ConvergenceExperiment config;
  config.trials =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 200;
  CampaignOptions opts;
  opts.threads = argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 0;
  config.seed = argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 1;
  config.max_steps = 2'000'000;

  std::ofstream jsonl_file;
  if (argc > 5) {
    jsonl_file.open(argv[5]);
    if (!jsonl_file) {
      std::cerr << "cannot open " << argv[5] << " for writing\n";
      return 2;
    }
    opts.jsonl = &jsonl_file;
  }

  const Design design = make_design(name);
  const unsigned threads =
      opts.threads == 0 ? default_threads() : opts.threads;
  std::cout << "campaign: " << design.name << ", " << config.trials
            << " trials, seed " << config.seed << ", " << threads
            << " thread(s)\n";

  const auto results = run_campaign(design, config, opts);
  std::cout << "converged: " << std::fixed << std::setprecision(1)
            << 100.0 * results.aggregate.converged_fraction << "% ("
            << results.aggregate.steps.count << "/" << config.trials
            << " trials)\n"
            << std::defaultfloat << std::setprecision(6);
  print_stats("steps", results.aggregate.steps);
  print_stats("rounds", results.aggregate.rounds);
  print_stats("moves", results.aggregate.moves);
  if (opts.jsonl != nullptr) {
    std::cout << config.trials << " records written to " << argv[5] << "\n";
  }
  return 0;
}
