// Scale probe for the compact state store: run the exhaustive convergence
// check on Dijkstra's K-state ring at a chosen size, through either
// backend, and report states/sec and peak RSS. This is the driver behind
// EXPERIMENTS.md E13 (the token-ring N sweep) and the 10^8-state
// acceptance run for src/store/ — the dense backend physically cannot
// finish the large points, which is the whole argument for the store.
//
// Usage:  store_scale [N] [K]
//   N   ring size                       (default: 4)
//   K   counter modulus, must be > N    (default: N + 1; K^N states)
//
// Flags:
//   --backend=legacy|store  engine selection (default NONMASK_STORE_BACKEND)
//   --state-budget=M        StateSpace budget (default NONMASK_STATE_BUDGET)
//   --threads=T             worker threads for the store sweeps
//   --weakly-fair           run the Tarjan/SCC weakly-fair check instead of
//                           the unfair DFS (no max-steps-to-S in this mode)
//   --report-out=PATH       self-describing run-report JSON; records
//                           backend_fallback_reason when the compact
//                           backend cannot serve this size
//   --dashboard-out=PATH    self-contained HTML dashboard built from the
//                           telemetry heartbeat series (starts an
//                           in-memory sampler when NONMASK_TELEMETRY is
//                           not already active)
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "checker/state_space.hpp"
#include "obs/dashboard.hpp"
#include "obs/report.hpp"
#include "obs/rss.hpp"
#include "obs/telemetry.hpp"
#include "protocols/token_ring.hpp"
#include "store/facade.hpp"

using namespace nonmask;

int main(int argc, char** argv) {
  int n = 4;
  int k = 0;
  bool weakly_fair = false;
  std::string report_out;
  std::string dashboard_out;
  store::StoreConfig cfg = store::StoreConfig::from_env();
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: store_scale [N] [K] [--backend=legacy|store]\n"
                   "         [--state-budget=M] [--threads=T] "
                   "[--weakly-fair] [--report-out=PATH]\n"
                   "         [--dashboard-out=PATH]\n";
      return 0;
    } else if (arg == "--weakly-fair") {
      weakly_fair = true;
    } else if (arg.rfind("--backend=", 0) == 0) {
      const std::string backend = arg.substr(10);
      if (backend == "store") {
        cfg.backend = store::StoreBackend::kStore;
      } else if (backend == "legacy") {
        cfg.backend = store::StoreBackend::kLegacyDense;
      } else {
        std::cerr << "unknown backend '" << backend << "'\n";
        return 2;
      }
    } else if (arg.rfind("--state-budget=", 0) == 0) {
      cfg.budget = std::strtoull(arg.c_str() + 15, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      cfg.threads = static_cast<unsigned>(std::atoi(arg.c_str() + 10));
    } else if (arg.rfind("--report-out=", 0) == 0) {
      report_out = arg.substr(13);
    } else if (arg.rfind("--dashboard-out=", 0) == 0) {
      dashboard_out = arg.substr(16);
    } else if (positional == 0) {
      n = std::atoi(arg.c_str());
      ++positional;
    } else {
      k = std::atoi(arg.c_str());
      ++positional;
    }
  }
  if (k == 0) k = n + 1;
  if (n < 2 || k <= n) {
    std::cerr << "need N >= 2 and K > N (got N=" << n << ", K=" << k
              << ")\n";
    return 2;
  }

  // Heartbeat sampling: the env sink wins; a dashboard request without it
  // records in memory only.
  obs::Telemetry::start_from_env();
  if (!dashboard_out.empty() && !obs::Telemetry::running()) {
    obs::Telemetry::start({});
  }

  const auto tr = make_dijkstra_ring(n, k);
  const auto count = tr.design.program.state_count();
  if (!count || *count > cfg.budget) {
    std::cerr << "K^N = " << (count ? std::to_string(*count) : "overflow")
              << " exceeds the state budget " << cfg.budget
              << " (raise --state-budget / NONMASK_STATE_BUDGET)\n";
    return 2;
  }
  std::cout << "dijkstra ring N=" << n << " K=" << k << ": " << *count
            << " states, backend " << store::to_string(cfg.backend)
            << (weakly_fair ? ", weakly-fair (Tarjan/SCC)" : "") << "\n";

  const StateSpace space(tr.design.program, cfg.budget);
  const auto fallback = store::backend_fallback_reason(cfg, space);
  if (fallback) {
    std::cout << "backend fallback: " << *fallback << "\n";
  }
  const auto t0 = std::chrono::steady_clock::now();
  const auto report =
      weakly_fair
          ? store::check_convergence_weakly_fair_via(cfg, space, tr.design.S(),
                                                     tr.design.T())
          : store::check_convergence_via(cfg, space, tr.design.S(),
                                         tr.design.T());
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double rate = static_cast<double>(space.size()) / secs;

  std::cout << "verdict: " << to_string(report.verdict);
  if (!weakly_fair) {
    // The SCC pass proves every fair computation converges but does not
    // compute per-state longest paths, so the worst-steps column only
    // exists in unfair mode.
    std::cout << ", worst " << report.max_steps_to_S << " steps to S";
  }
  std::cout << "\n"
            << "states in S: " << report.states_in_S
            << ", region: " << report.region_states
            << ", transitions: " << report.transitions << "\n"
            << "elapsed: " << secs << " s  (" << rate << " states/s)\n"
            << "peak RSS: " << obs::peak_rss_mb() << " MB\n";

  // Joins the sampler after one final heartbeat, so the last sample's
  // cumulative state count equals the report's "states".
  obs::Telemetry::stop();

  if (!report_out.empty()) {
    std::ofstream out(report_out);
    if (!out) {
      std::cerr << "cannot open " << report_out << " for writing\n";
      return 2;
    }
    obs::RunReport doc("store_scale", tr.design.name);
    doc.add_text("backend", store::to_string(cfg.backend));
    if (fallback) doc.add_text("backend_fallback_reason", *fallback);
    doc.add_text("mode", weakly_fair ? "weakly_fair" : "unfair");
    doc.add_number("state_budget", cfg.budget);
    doc.add_number("states", space.size());
    // The ¬S region the convergence traversal actually pushes — the number
    // a telemetry heartbeat's cumulative states counter converges to.
    doc.add_number("region_states", report.region_states);
    doc.add_number("elapsed_s", secs);
    doc.add_number("states_per_sec", rate);
    doc.add_number("peak_rss_mb", obs::peak_rss_mb());
    doc.add_text("verdict", to_string(report.verdict));
    if (!weakly_fair) doc.add_number("max_steps_to_S", report.max_steps_to_S);
    doc.add_number("transitions", report.transitions);
    doc.write(out);
    std::cout << "report written to " << report_out << "\n";
  }

  if (!dashboard_out.empty()) {
    obs::DashboardSpec spec;
    spec.title = "store_scale: " + tr.design.name;
    spec.subtitle = "N=" + std::to_string(n) + " K=" + std::to_string(k) +
                    ", " + std::to_string(space.size()) + " states, backend " +
                    store::to_string(cfg.backend) +
                    (weakly_fair ? ", weakly-fair (Tarjan/SCC)" : ", unfair");
    spec.summary = {
        {"backend", store::to_string(cfg.backend)},
        {"mode", weakly_fair ? "weakly fair" : "unfair"},
        {"states", std::to_string(space.size())},
        {"transitions", std::to_string(report.transitions)},
        {"verdict", to_string(report.verdict)},
        {"elapsed", std::to_string(secs) + " s"},
        {"throughput", std::to_string(static_cast<std::uint64_t>(rate)) +
                           " states/s"},
    };
    if (fallback) spec.summary.push_back({"backend fallback", *fallback});
    spec.samples = obs::Telemetry::samples();
    obs::write_dashboard_file(dashboard_out, spec);
    std::cout << "dashboard written to " << dashboard_out << "\n";
  }
  return report.verdict == ConvergenceVerdict::kConverges ? 0 : 1;
}
