// The Section 7.1 exercise: the token ring refined to message passing,
// run over lossy, corrupting channels. Shows x values and channel contents
// per step.
//
// Usage:  message_passing_ring [num_nodes] [steps] [loss_probability]
#include <cstdlib>
#include <iostream>
#include <string>

#include "engine/simulator.hpp"
#include "msg/mp_token_ring.hpp"
#include "sched/daemons.hpp"

using namespace nonmask;

namespace {

std::string render(const MpTokenRingDesign& mp, const State& s) {
  std::string out;
  for (std::size_t j = 0; j < mp.x.size(); ++j) {
    out += std::to_string(s.get(mp.x[j]));
    const Value c = s.get(mp.channel[j].slot);
    out += c == Channel::kEmpty ? "( )" : "(" + std::to_string(c) + ")";
    out += ' ';
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 5;
  const std::size_t steps = argc > 2
                                ? static_cast<std::size_t>(std::atoll(argv[2]))
                                : 80;
  const double loss = argc > 3 ? std::atof(argv[3]) : 0.05;

  const auto mp = make_mp_token_ring(n, 2 * n + 1);
  const Design& d = mp.design;
  std::cout << "message-passing token ring, " << n << " nodes, K = "
            << 2 * n + 1 << ", per-step channel loss p = " << loss
            << "\nlegend: x(c) = node value (channel to successor)\n\n";

  RoundRobinDaemon daemon;  // fair: the refinement requires it
  Simulator sim(d.program, daemon);
  Rng fault_rng(17);
  std::size_t lost = 0;

  State s = d.program.initial_state();
  const auto S = d.S();
  RunOptions opts;
  opts.max_steps = 1;
  for (std::size_t step = 0; step < steps; ++step) {
    if (fault_rng.chance(loss)) {
      const std::size_t victim = fault_rng.below(mp.loss_faults.size());
      const auto& fa = d.program.action(mp.loss_faults[victim]);
      if (fa.enabled(s)) {
        fa.execute(s);
        ++lost;
        std::cout << "--- message on ch." << victim << " lost ---\n";
      }
    }
    std::cout << (S(s) ? "  " : "! ") << render(mp, s) << "\n";
    s = sim.run(s, opts).final_state;
  }
  std::cout << "\n" << lost << " messages lost; final state "
            << (S(s) ? "has exactly one token" : "is still repairing")
            << "\n";
  return 0;
}
