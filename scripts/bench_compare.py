#!/usr/bin/env python3
"""Compare two BENCH_store.json files (google-benchmark JSON format).

Usage: bench_compare.py BASELINE CURRENT [--max-regression FRAC]
       bench_compare.py --telemetry BASELINE.jsonl CURRENT.jsonl \\
           [--max-regression FRAC]

Diffs the throughput ("states/s" counter) and peak RSS ("peak_rss_mb")
of every benchmark present in BOTH files, prints a table, and exits
non-zero when any benchmark's states/s regressed by more than
--max-regression (default 0.25, i.e. 25%).

Benchmarks present in only one file are listed but never fail the gate,
so adding or retiring a benchmark does not require touching the
committed baseline in the same change. Extra top-level keys are
tolerated; an optional "store_scale" section (injected by the
acceptance run, not google-benchmark) is compared by the same rule when
both files carry it.

With --telemetry the two inputs are NONMASK_TELEMETRY heartbeat JSONL
series instead: the gate compares steady-state throughput, the median
of the instantaneous states_per_sec over the middle half of each run
(the warm-up and drain quarters are dropped), plus final peak RSS.
"""

import argparse
import json
import statistics
import sys


def load_heartbeats(path):
    samples = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                samples.append(json.loads(line))
    return samples


def steady_state_rate(samples):
    """Median instantaneous states/s over the middle half of the series."""
    rates = [s["states_per_sec"] for s in samples]
    if len(rates) >= 4:
        rates = rates[len(rates) // 4 : -(len(rates) // 4)]
    rates = [r for r in rates if r > 0]
    return statistics.median(rates) if rates else None


def compare_telemetry(args):
    base = load_heartbeats(args.baseline)
    cur = load_heartbeats(args.current)
    if not base or not cur:
        print("error: empty heartbeat series", file=sys.stderr)
        return 2
    failed, line = compare_entry(
        "telemetry steady-state",
        steady_state_rate(base), steady_state_rate(cur),
        base[-1].get("peak_rss_mb"), cur[-1].get("peak_rss_mb"),
        args.max_regression,
    )
    print(f"comparing heartbeat series: {args.baseline} "
          f"({len(base)} samples) -> {args.current} ({len(cur)} samples)")
    print(line)
    if failed:
        print(f"FAIL: >{args.max_regression:.0%} steady-state states/s "
              "regression", file=sys.stderr)
        return 1
    print(f"ok: no steady-state regression beyond {args.max_regression:.0%}")
    return 0


def load_benchmarks(path):
    with open(path) as f:
        doc = json.load(f)
    by_name = {}
    for b in doc.get("benchmarks", []):
        # Repetition aggregates (mean/median/stddev) would double-count.
        if b.get("run_type") == "aggregate":
            continue
        by_name[b["name"]] = b
    return doc, by_name


def fmt_rate(v):
    if v is None:
        return "-"
    if v >= 1e6:
        return f"{v / 1e6:.2f}M/s"
    if v >= 1e3:
        return f"{v / 1e3:.1f}k/s"
    return f"{v:.1f}/s"


def compare_entry(name, base_rate, cur_rate, base_rss, cur_rss, max_regression):
    """Returns (failed, line) for one comparable entry."""
    failed = False
    if base_rate and cur_rate is not None:
        delta = (cur_rate - base_rate) / base_rate
        verdict = "ok"
        if delta < -max_regression:
            verdict = "REGRESSION"
            failed = True
        rate_col = f"{fmt_rate(base_rate):>10} -> {fmt_rate(cur_rate):>10} ({delta:+7.1%}) {verdict}"
    else:
        rate_col = "no states/s counter"
    if base_rss and cur_rss is not None:
        rss_col = f"rss {base_rss:8.1f} -> {cur_rss:8.1f} MB"
    else:
        rss_col = ""
    return failed, f"  {name:<50} {rate_col}  {rss_col}"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        metavar="FRAC",
        help="fail when states/s drops by more than FRAC (default 0.25)",
    )
    ap.add_argument(
        "--telemetry",
        action="store_true",
        help="inputs are telemetry heartbeat JSONL series; compare "
             "steady-state (median mid-run) states/s",
    )
    args = ap.parse_args()

    if args.telemetry:
        return compare_telemetry(args)

    base_doc, base = load_benchmarks(args.baseline)
    cur_doc, cur = load_benchmarks(args.current)

    common = sorted(set(base) & set(cur))
    only_base = sorted(set(base) - set(cur))
    only_cur = sorted(set(cur) - set(base))

    failures = []
    print(f"comparing {len(common)} benchmark(s): "
          f"{args.baseline} -> {args.current}")
    for name in common:
        b, c = base[name], cur[name]
        failed, line = compare_entry(
            name,
            b.get("states/s"), c.get("states/s"),
            b.get("peak_rss_mb"), c.get("peak_rss_mb"),
            args.max_regression,
        )
        print(line)
        if failed:
            failures.append(name)

    # The acceptance-run section (store_scale weakly-fair exhaustive check)
    # rides along in the same file outside the google-benchmark schema.
    base_scale = base_doc.get("store_scale")
    cur_scale = cur_doc.get("store_scale")
    if isinstance(base_scale, dict) and isinstance(cur_scale, dict):
        failed, line = compare_entry(
            "store_scale (acceptance run)",
            base_scale.get("states_per_sec"), cur_scale.get("states_per_sec"),
            base_scale.get("peak_rss_mb"), cur_scale.get("peak_rss_mb"),
            args.max_regression,
        )
        print(line)
        if failed:
            failures.append("store_scale")

    for name in only_base:
        print(f"  {name:<50} only in baseline (ignored)")
    for name in only_cur:
        print(f"  {name:<50} only in current (ignored)")

    if not common and not (base_scale and cur_scale):
        print("error: no comparable benchmarks between the two files",
              file=sys.stderr)
        return 2
    if failures:
        print(f"FAIL: >{args.max_regression:.0%} states/s regression in: "
              + ", ".join(failures), file=sys.stderr)
        return 1
    print("ok: no states/s regression beyond "
          f"{args.max_regression:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
