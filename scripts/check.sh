#!/usr/bin/env bash
# Developer check: configure, build (warnings as errors), run the full test
# suite, and smoke-run every benchmark briefly.
#
# Usage: check.sh [--jobs N | -j N]
#   --jobs N   parallelism for the build and for ctest (default: the build
#              tool's own default / serial ctest)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --jobs|-j)
      jobs="$2"
      shift 2
      ;;
    --jobs=*)
      jobs="${1#--jobs=}"
      shift
      ;;
    *)
      echo "usage: $0 [--jobs N]" >&2
      exit 2
      ;;
  esac
done

cmake -B build -G Ninja -DNONMASK_WERROR=ON
cmake --build build ${jobs:+-j "$jobs"}
ctest --test-dir build --output-on-failure ${jobs:+-j "$jobs"}

for b in build/bench/bench_*; do
  echo "== ${b} =="
  "${b}" --benchmark_min_time=0.01
done

# Resume smoke: a campaign killed mid-run (simulated by truncating its
# checkpoint journal, torn final line included) must resume to a JSONL
# stream byte-identical to the uninterrupted run's.
echo "== campaign resume smoke =="
resume_dir="$(mktemp -d)"
trap 'rm -rf "${resume_dir}"' EXIT
NONMASK_THREADS=4 ./build/examples/parallel_campaign dijkstra 64 0 7 \
  --checkpoint="${resume_dir}/full.jsonl" >/dev/null
head -n 20 "${resume_dir}/full.jsonl" > "${resume_dir}/killed.jsonl"
printf '{"design":"dij' >> "${resume_dir}/killed.jsonl"  # torn tail
NONMASK_THREADS=4 ./build/examples/parallel_campaign dijkstra 64 0 7 \
  --checkpoint="${resume_dir}/killed.jsonl" --resume >/dev/null
diff "${resume_dir}/full.jsonl" "${resume_dir}/killed.jsonl"
echo "ok: resumed journal is byte-identical"

# Observability smoke: the trace/metrics/report JSON must stay parseable.
echo "== trace_report smoke =="
obs_dir="$(mktemp -d)"
trap 'rm -rf "${resume_dir}" "${obs_dir}"' EXIT
NONMASK_THREADS=4 ./build/examples/trace_report \
  --design=dijkstra --grain=1024 \
  --trace-out="${obs_dir}/trace.json" \
  --metrics-out="${obs_dir}/metrics.json" \
  --report-out="${obs_dir}/report.json"
if command -v python3 >/dev/null; then
  python3 - "${obs_dir}" <<'EOF'
import json, sys
d = sys.argv[1]
events = json.load(open(f"{d}/trace.json"))["traceEvents"]
tids = {e["tid"] for e in events if e["name"].startswith("sweep.")}
assert len(tids) >= 2, f"expected >= 2 sweep workers, got {tids}"
json.load(open(f"{d}/metrics.json"))
json.load(open(f"{d}/report.json"))
print(f"ok: {len(events)} trace events, {len(tids)} sweep workers")
EOF
fi

# Synthesis smoke: re-derive the acceptance protocols from closure actions +
# constraints alone, and check the JSON report is byte-identical across
# thread counts (the CEGIS determinism contract). bench_synth additionally
# writes its candidates/sec + prune-rate table to BENCH_synth.json.
echo "== synthesis smoke =="
synth_dir="$(mktemp -d)"
trap 'rm -rf "${resume_dir}" "${obs_dir}" "${synth_dir}"' EXIT
NONMASK_THREADS=1 ./build/examples/design_workbench --synthesize --seed=7 \
  --report-out="${synth_dir}/synthesis_t1.json" >/dev/null
NONMASK_THREADS=8 ./build/examples/design_workbench --synthesize --seed=7 \
  --report-out="${synth_dir}/synthesis_t8.json" >/dev/null
diff "${synth_dir}/synthesis_t1.json" "${synth_dir}/synthesis_t8.json"
echo "ok: synthesis reports byte-identical at 1 and 8 threads"
if command -v python3 >/dev/null; then
  python3 - "${synth_dir}/synthesis_t1.json" <<'EOF'
import json, sys
reports = json.load(open(sys.argv[1]))
assert len(reports) >= 4, f"expected >= 4 synthesis targets, got {len(reports)}"
for r in reports:
    assert r["success"], r["design"]
    assert r["exact"]["verdict"] == "converges", r["design"]
    assert not r["certificate"].get("audit_problems"), r["design"]
print("ok:", {r["design"]: r["certificate"]["method"] for r in reports})
EOF
fi
./build/bench/bench_synth --benchmark_min_time=0.01 \
  --benchmark_out=BENCH_synth.json --benchmark_out_format=json >/dev/null
echo "ok: wrote BENCH_synth.json"

# Store smoke: every verdict the workbench prints must be byte-identical
# between the legacy dense backend and the compact store backend, at 1/2/8
# threads (the two-backend contract of store/facade.hpp), and the env
# switch must select the same path as the flag. bench_store writes
# states/sec + peak RSS + shard occupancy to BENCH_store.json.
echo "== store backend equivalence smoke =="
store_dir="$(mktemp -d)"
trap 'rm -rf "${resume_dir}" "${obs_dir}" "${synth_dir}" "${store_dir}"' EXIT
for t in 1 2 8; do
  NONMASK_THREADS="${t}" ./build/examples/design_workbench --backend=legacy \
    > "${store_dir}/wb_legacy_t${t}.txt"
  NONMASK_THREADS="${t}" ./build/examples/design_workbench --backend=store \
    > "${store_dir}/wb_store_t${t}.txt"
  diff "${store_dir}/wb_legacy_t1.txt" "${store_dir}/wb_legacy_t${t}.txt"
  diff "${store_dir}/wb_legacy_t${t}.txt" "${store_dir}/wb_store_t${t}.txt"
done
NONMASK_STORE_BACKEND=store ./build/examples/design_workbench \
  > "${store_dir}/wb_store_env.txt"
diff "${store_dir}/wb_store_t1.txt" "${store_dir}/wb_store_env.txt"
echo "ok: workbench reports byte-identical across backends and 1/2/8 threads"

# Weakly-fair equivalence smoke: the store-native Tarjan/SCC pass must
# print the same verdict/count lines as the legacy dense checker at 1/2/8
# threads (timing lines stripped — they are the only legitimate diff).
echo "== weakly-fair store equivalence smoke =="
for t in 1 2 8; do
  for backend in legacy store; do
    ./build/examples/store_scale 4 6 --weakly-fair "--backend=${backend}" \
      "--threads=${t}" \
      | grep -v -e '^elapsed:' -e '^peak RSS:' -e '^backend fallback:' \
      | sed 's/backend dense/backend X/;s/backend store/backend X/' \
      > "${store_dir}/fair_${backend}_t${t}.txt"
  done
  diff "${store_dir}/fair_legacy_t1.txt" "${store_dir}/fair_legacy_t${t}.txt"
  diff "${store_dir}/fair_legacy_t${t}.txt" "${store_dir}/fair_store_t${t}.txt"
done
echo "ok: weakly-fair verdicts byte-identical across backends and 1/2/8 threads"

# Telemetry + dashboard smoke: a weakly-fair store run with the heartbeat
# sampler on must write parseable JSONL whose final cumulative states count
# equals the report's region_states (the accounting identity behind the
# dashboard), and the dashboard must be one self-contained HTML file.
echo "== telemetry dashboard smoke =="
NONMASK_TELEMETRY="${store_dir}/heartbeats.jsonl" NONMASK_TELEMETRY_MS=10 \
  ./build/examples/store_scale 6 8 --weakly-fair --backend=store --threads=4 \
  --report-out="${store_dir}/scale_report.json" \
  --dashboard-out="${store_dir}/dashboard.html" >/dev/null
if command -v python3 >/dev/null; then
  python3 - "${store_dir}" <<'EOF'
import json, sys
d = sys.argv[1]
beats = [json.loads(l) for l in open(f"{d}/heartbeats.jsonl") if l.strip()]
assert len(beats) >= 2, f"expected periodic + final heartbeats, got {len(beats)}"
assert [b["seq"] for b in beats] == list(range(len(beats))), "seq gap"
report = json.load(open(f"{d}/scale_report.json"))
final = beats[-1]["states"]
assert final == report["region_states"], \
    f"final heartbeat {final} != report region_states {report['region_states']}"
html = open(f"{d}/dashboard.html").read()
assert "<svg" in html and "<!DOCTYPE html>" in html
for banned in ("http://", "https://", "src=", "<link", "@import"):
    assert banned not in html, f"dashboard not self-contained: {banned}"
print(f"ok: {len(beats)} heartbeats, final count {final} matches report; "
      f"dashboard is {len(html)} bytes, self-contained")
EOF
fi

# Benchmark regression gate: a fresh bench_store run must stay within 25%
# states/s of the committed baseline (the fresh run goes to a temp path so
# the baseline only changes when deliberately regenerated).
./build/bench/bench_store --benchmark_min_time=0.01 \
  --benchmark_out="${store_dir}/BENCH_store.json" \
  --benchmark_out_format=json >/dev/null
if [[ -f BENCH_store.json ]] && command -v python3 >/dev/null; then
  python3 scripts/bench_compare.py BENCH_store.json \
    "${store_dir}/BENCH_store.json"
else
  echo "note: no committed BENCH_store.json baseline; skipping compare"
fi

# Byzantine containment smoke: the radius analysis must be deterministic —
# the timestamp-free artifact is byte-diffed across 1/2/8 threads — the
# spanning tree must contain its benchmark leaf placement (the min+1
# shape), the token ring must never contain, and the dashboard must carry
# the certification-triage table. CI uploads the JSON artifact.
echo "== byzantine containment smoke =="
cont_dir="$(mktemp -d)"
trap 'rm -rf "${resume_dir}" "${obs_dir}" "${synth_dir}" "${store_dir}" "${cont_dir}"' EXIT
for t in 1 2 8; do
  NONMASK_THREADS="${t}" ./build/examples/containment_probe all 1 1 \
    --containment-out="${cont_dir}/containment_t${t}.json" >/dev/null
  diff "${cont_dir}/containment_t1.json" "${cont_dir}/containment_t${t}.json"
done
echo "ok: containment artifact byte-identical at 1/2/8 threads"
NONMASK_THREADS=4 ./build/examples/containment_probe all 1 1 \
  --containment-out="${cont_dir}/containment.json" \
  --report-out="${cont_dir}/containment_report.json" \
  --dashboard-out="${cont_dir}/containment.html" >/dev/null
if command -v python3 >/dev/null; then
  python3 - "${cont_dir}" <<'EOF2'
import json, sys
d = sys.argv[1]
art = json.load(open(f"{d}/containment.json"))
bench = {b["protocol"]: b for b in art["benchmarks"]}
tree = bench["bfs-spanning-tree"]
assert tree["contained"] and tree["radius"] == 1, tree
ring = bench["dijkstra-k-state-ring"]
assert not ring["contained"] and ring["radius"] == ring["horizon"], ring
triage = {(t["design"], t["fault_model"]): t["verdict"] for t in art["triage"]}
assert triage[("bfs-spanning-tree", "byzantine")] == "survives", triage
assert triage[("dijkstra-k-state-ring", "byzantine")] == "refuted", triage
assert triage[("bfs-spanning-tree+env", "environment")] == "falls-back", triage
report = json.load(open(f"{d}/containment_report.json"))
assert "triage" in report, sorted(report)
html = open(f"{d}/containment.html").read()
assert "Certification triage" in html, "dashboard missing the triage table"
print(f"ok: tree contained (radius 1), ring refuted, "
      f"{len(art['triage'])} triage rows in report + dashboard")
EOF2
fi

# Verification service smoke: POST every example spec to a live
# nonmask_serve, diff each server report against the direct spec_tool run,
# save the job dashboard, then kill -9 the server mid-campaign and check
# the restart resumes from the checkpoint journal to an identical report.
echo "== verification service smoke =="
serve_dir="$(mktemp -d)"
trap 'rm -rf "${resume_dir}" "${obs_dir}" "${synth_dir}" "${store_dir}" "${cont_dir}" "${serve_dir}"' EXIT
scripts/serve_smoke.sh build "${serve_dir}"
