#!/usr/bin/env bash
# Developer check: configure, build (warnings as errors), run the full test
# suite, and smoke-run every benchmark briefly.
#
# Usage: check.sh [--jobs N | -j N]
#   --jobs N   parallelism for the build and for ctest (default: the build
#              tool's own default / serial ctest)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --jobs|-j)
      jobs="$2"
      shift 2
      ;;
    --jobs=*)
      jobs="${1#--jobs=}"
      shift
      ;;
    *)
      echo "usage: $0 [--jobs N]" >&2
      exit 2
      ;;
  esac
done

cmake -B build -G Ninja -DNONMASK_WERROR=ON
cmake --build build ${jobs:+-j "$jobs"}
ctest --test-dir build --output-on-failure ${jobs:+-j "$jobs"}

for b in build/bench/bench_*; do
  echo "== ${b} =="
  "${b}" --benchmark_min_time=0.01
done
