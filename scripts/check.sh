#!/usr/bin/env bash
# Developer check: configure, build (warnings as errors), run the full test
# suite, and smoke-run every benchmark briefly.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja -DNONMASK_WERROR=ON
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/bench_*; do
  echo "== ${b} =="
  "${b}" --benchmark_min_time=0.01
done
