#!/usr/bin/env bash
# End-to-end smoke for the verification job server.
#
# 1. Starts nonmask_serve on an ephemeral port with telemetry sampling.
# 2. POSTs every example spec (specs/) over HTTP, polls to completion, and
#    byte-diffs each server report against the direct `spec_tool run` of
#    the same document (timestamps and process-global metrics stripped —
#    everything else must match, including the spec provenance hash).
# 3. Saves the campaign job's telemetry dashboard as an artifact.
# 4. kill -9's the server mid-campaign, restarts it on the same state
#    directory, and checks the recovered job resumes from its checkpoint
#    journal to a report identical to an uninterrupted run's.
#
# Usage: serve_smoke.sh [BUILD_DIR [OUT_DIR]]
set -euo pipefail
cd "$(dirname "$0")/.."
build="${1:-build}"
out="${2:-$(mktemp -d)}"
mkdir -p "$out"
state="$out/serve-state"
rm -rf "$state"

spec_tool="$build/examples/spec_tool"
serve="$build/examples/nonmask_serve"
SERVE_PID=""
PORT=""

cleanup() {
  if [[ -n "$SERVE_PID" ]]; then kill "$SERVE_PID" 2>/dev/null || true; fi
}
trap cleanup EXIT

start_server() {
  : > "$out/serve.log"
  "$serve" --state-dir="$state" --workers=2 --telemetry-ms=50 \
    > "$out/serve.log" 2>> "$out/serve.err" &
  SERVE_PID=$!
  for _ in $(seq 200); do
    grep -q '^listening' "$out/serve.log" 2>/dev/null && break
    sleep 0.05
  done
  PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$out/serve.log")"
  if [[ -z "$PORT" ]]; then
    echo "error: server did not start" >&2
    cat "$out/serve.err" >&2
    exit 1
  fi
}

post_job() { # spec-file -> prints job id
  curl -sS -X POST --data-binary @"$1" "http://127.0.0.1:$PORT/jobs" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])'
}

wait_done() { # job-id
  local st=""
  for _ in $(seq 600); do
    st="$(curl -sS "http://127.0.0.1:$PORT/jobs/$1" \
      | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')"
    if [[ "$st" == done ]]; then return 0; fi
    if [[ "$st" == failed ]]; then
      echo "error: job $1 failed:" >&2
      curl -sS "http://127.0.0.1:$PORT/jobs/$1" >&2
      exit 1
    fi
    sleep 0.1
  done
  echo "error: job $1 did not finish (state $st)" >&2
  exit 1
}

strip_volatile() { # report-in json-out
  python3 - "$1" "$2" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for key in ("started_at", "wall_ms", "metrics"):
    doc.pop(key, None)
json.dump(doc, open(sys.argv[2], "w"), indent=1)
EOF
}

start_server
curl -sS "http://127.0.0.1:$PORT/healthz" | grep -q '"status": "ok"'

# --- server report == direct run, for every example spec -------------------
campaign_id=""
for spec in specs/token_ring_campaign.json specs/spanning_tree_check.json \
            specs/byzantine_containment.json; do
  name="$(basename "$spec" .json)"
  id="$(post_job "$spec")"
  if [[ "$name" == token_ring_campaign ]]; then campaign_id="$id"; fi
  wait_done "$id"
  curl -sS "http://127.0.0.1:$PORT/jobs/$id/report" > "$out/$name.server.json"
  "$spec_tool" run "$spec" --report-out="$out/$name.direct.json" \
    2> /dev/null
  strip_volatile "$out/$name.server.json" "$out/$name.server.stripped"
  strip_volatile "$out/$name.direct.json" "$out/$name.direct.stripped"
  diff "$out/$name.server.stripped" "$out/$name.direct.stripped"
  echo "ok: $name server report identical to direct run"
done

# --- dashboard artifact ----------------------------------------------------
curl -sS "http://127.0.0.1:$PORT/jobs/$campaign_id/dashboard" \
  > "$out/job_dashboard.html"
grep -q '<!DOCTYPE html>' "$out/job_dashboard.html"
echo "ok: campaign dashboard saved ($(wc -c < "$out/job_dashboard.html") bytes)"

# --- kill -9 mid-campaign, restart, resume ---------------------------------
# A campaign that never converges: every trial burns max_steps, giving a
# long, steady checkpoint stream to kill in the middle of.
cat > "$out/spinner.spec.json" <<'EOF'
{
  "schema": "nonmask-spec/1",
  "name": "spinner",
  "variables": [{"name": "x", "min": "0", "max": "3"}],
  "constraints": [{"name": "never", "expr": "x == 99"}],
  "actions": [
    {"name": "spin", "kind": "convergence", "guard": "1",
     "assign": {"x": "(x + 1) % 4"}, "constraint": "0"}
  ],
  "job": {"type": "campaign", "trials": 400, "seed": 11,
          "max_steps": 100000}
}
EOF
spin_id="$(post_job "$out/spinner.spec.json")"
journal="$state/$spin_id.checkpoint.jsonl"
for _ in $(seq 300); do
  if [[ -f "$journal" ]] && [[ "$(wc -l < "$journal")" -ge 20 ]]; then break; fi
  sleep 0.05
done
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
completed_before_kill="$(wc -l < "$journal" 2>/dev/null || echo 0)"
if [[ -f "$state/$spin_id.report.json" ]]; then
  echo "note: campaign finished before the kill landed"
fi

start_server
wait_done "$spin_id"
grep -q 'recovered' "$out/serve.err" \
  || echo "note: nothing to recover (job had already finished)"
curl -sS "http://127.0.0.1:$PORT/jobs/$spin_id/report" \
  > "$out/spinner.server.json"
"$spec_tool" run "$out/spinner.spec.json" \
  --report-out="$out/spinner.direct.json" 2> /dev/null
strip_volatile "$out/spinner.server.json" "$out/spinner.server.stripped"
strip_volatile "$out/spinner.direct.json" "$out/spinner.direct.stripped"
diff "$out/spinner.server.stripped" "$out/spinner.direct.stripped"
echo "ok: killed at ~${completed_before_kill}/400 trials; resumed report" \
     "identical to an uninterrupted run"

kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "ok: verification service smoke passed"
