// Tests for the restricted fault models (checker/restricted.hpp), the
// Byzantine containment-radius pass (checker/containment.hpp), the
// adversarial placement search, and the certification triage built on them.
//
// The hand-checkable fixture is the BFS spanning tree on the 5-path rooted
// at 0 (fixpoint dist = [0,1,2,3,4]):
//   * Byzantine leaf {4}: only node 3 can be dragged off its fixpoint
//     (dist.3 = min(dist.2, dist.4)+1 with dist.2 pinned at 2 -> radius 1,
//     the Dubois–Masuzawa–Tixeuil min+1 shape), nodes 0..2 stay clean.
//   * Byzantine interior {1}: everything below it corrupts (radius 3 =
//     horizon), but the root stays clean.
// Dijkstra's ring cannot contain any placement: the corrupted token value
// circulates to every correct process.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "checker/containment.hpp"
#include "checker/restricted.hpp"
#include "core/builder.hpp"
#include "protocols/spanning_tree.hpp"
#include "protocols/token_ring.hpp"
#include "resilience/adversary.hpp"
#include "synth/triage.hpp"

namespace nonmask {
namespace {

SpanningTreeDesign path5_tree() {
  return make_spanning_tree(UndirectedGraph::path(5), 0);
}

ContainmentReport measure(const Design& d, const std::vector<int>& byz,
                          unsigned threads = 0) {
  ContainmentOptions opts;
  opts.config.threads = threads;
  return measure_containment(d.program, byz, d.program.initial_state(), opts);
}

TEST(RestrictedTest, CommunicationGraphAndDistances) {
  const auto st = path5_tree();
  const UndirectedGraph g = communication_graph(st.design.program);
  ASSERT_EQ(g.size(), 5);
  EXPECT_EQ(distances_from(g, {4}), (std::vector<int>{4, 3, 2, 1, 0}));
  EXPECT_EQ(distances_from(g, {1, 3}), (std::vector<int>{1, 0, 1, 0, 1}));
}

TEST(RestrictedTest, ComposeByzantineShape) {
  const auto st = path5_tree();
  const Program composed = compose_byzantine(st.design.program, {4});
  std::size_t env = 0, kept = 0;
  for (const auto& a : composed.actions()) {
    if (a.kind() == ActionKind::kEnvironment) {
      EXPECT_EQ(a.process(), 4);
      ++env;
    } else {
      EXPECT_NE(a.process(), 4);
      ++kept;
    }
  }
  EXPECT_EQ(env, 5u);  // one write action per value of dist.4 in [0,4]
  EXPECT_EQ(kept, st.design.program.actions().size() - 1);
  EXPECT_THROW(compose_byzantine(st.design.program, {99}),
               std::invalid_argument);
}

TEST(RestrictedTest, ValidateEnvironmentRejectsProgramWritesToEnvVars) {
  ProgramBuilder b("bad-env");
  const VarId x = b.var("x", 0, 1, 0);
  b.closure(
      "flip", [x](const State& s) { return s.get(x) == 1; },
      [x](State& s) { s.set(x, 0); }, {x}, {x});
  b.environment(
      "env-x", [](const State&) { return true; },
      [x](State& s) { s.set(x, 1); }, {x}, {x});
  EXPECT_THROW(validate_environment(b.build()), std::invalid_argument);
  EXPECT_NO_THROW(validate_environment(
      make_spanning_tree_with_environment(UndirectedGraph::path(4), 0)
          .design.program));
}

TEST(ContainmentTest, SpanningTreeLeafPlacementContained) {
  const auto st = path5_tree();
  const ContainmentReport rep = measure(st.design, {4});
  EXPECT_TRUE(rep.fixpoint_reached);
  EXPECT_EQ(rep.radius, 1);  // min+1 shape: only node 3 ever deviates
  EXPECT_EQ(rep.horizon, 4);
  EXPECT_TRUE(rep.contained);
  ASSERT_EQ(rep.process_dirty.size(), 5u);
  EXPECT_EQ(rep.process_dirty[0], 0);
  EXPECT_EQ(rep.process_dirty[1], 0);
  EXPECT_EQ(rep.process_dirty[2], 0);
  EXPECT_EQ(rep.process_dirty[3], 1);
  EXPECT_EQ(rep.process_distance[3], 1);
  EXPECT_GE(rep.time_to_containment, 1u);
  EXPECT_LE(rep.time_to_containment, rep.levels);
}

TEST(ContainmentTest, SpanningTreeInteriorPlacementNotContained) {
  const auto st = path5_tree();
  const ContainmentReport rep = measure(st.design, {1});
  EXPECT_EQ(rep.radius, 3);  // nodes 2,3,4 all corrupt
  EXPECT_EQ(rep.horizon, 3);
  EXPECT_FALSE(rep.contained);
  EXPECT_EQ(rep.process_dirty[0], 0);  // the root still holds
}

TEST(ContainmentTest, TokenRingNeverContains) {
  const auto ring = make_dijkstra_ring(5, 5);
  const ContainmentReport rep = measure(ring.design, {2});
  EXPECT_EQ(rep.radius, rep.horizon);
  EXPECT_FALSE(rep.contained);
}

TEST(ContainmentTest, ReportInvariantToThreadCount) {
  const auto check = [](const Design& design, const std::vector<int>& byz) {
    const ContainmentReport base = measure(design, byz, 1);
    for (unsigned threads : {2u, 8u}) {
      const ContainmentReport rep = measure(design, byz, threads);
      EXPECT_EQ(rep.radius, base.radius);
      EXPECT_EQ(rep.horizon, base.horizon);
      EXPECT_EQ(rep.contained, base.contained);
      EXPECT_EQ(rep.reachable_states, base.reachable_states);
      EXPECT_EQ(rep.levels, base.levels);
      EXPECT_EQ(rep.time_to_containment, base.time_to_containment);
      EXPECT_EQ(rep.process_dirty, base.process_dirty);
      EXPECT_EQ(containment_to_json(design.program, rep),
                containment_to_json(design.program, base));
    }
  };
  check(path5_tree().design, {4});
  check(make_dijkstra_ring(5, 5).design, {2});
}

TEST(ContainmentTest, JsonCarriesPlacementAndVerdict) {
  const auto st = path5_tree();
  const ContainmentReport rep = measure(st.design, {4});
  const std::string json = containment_to_json(st.design.program, rep);
  EXPECT_NE(json.find("\"byzantine\":[4]"), std::string::npos);
  EXPECT_NE(json.find("\"radius\":1"), std::string::npos);
  EXPECT_NE(json.find("\"contained\":true"), std::string::npos);
}

TEST(ByzantinePlacementTest, TreeWorstPlacementIsTheRootAdjacentInterior) {
  const auto st = path5_tree();
  ByzantinePlacementOptions opts;
  const ByzantinePlacementResult r =
      find_worst_byzantine_placement(st.design, opts);
  EXPECT_TRUE(r.exhaustive);
  EXPECT_TRUE(r.report_exact);
  EXPECT_EQ(r.byzantine, (std::vector<int>{1}));
  EXPECT_EQ(r.report.radius, 3);
  EXPECT_TRUE(r.convergence_destroyed);
  EXPECT_EQ(r.evaluations, 5u);
}

TEST(ByzantinePlacementTest, RingAnyPlacementDestroysContainment) {
  const auto ring = make_dijkstra_ring(5, 5);
  const ByzantinePlacementResult r =
      find_worst_byzantine_placement(ring.design, {});
  EXPECT_TRUE(r.report_exact);
  EXPECT_TRUE(r.convergence_destroyed);
  EXPECT_EQ(r.report.radius, r.report.horizon);
}

TEST(ByzantinePlacementTest, HillClimbDeterministicPerSeed) {
  const auto st = path5_tree();
  ByzantinePlacementOptions opts;
  opts.force_hill_climb = true;
  opts.seed = 42;
  const ByzantinePlacementResult a =
      find_worst_byzantine_placement(st.design, opts);
  const ByzantinePlacementResult b =
      find_worst_byzantine_placement(st.design, opts);
  EXPECT_FALSE(a.exhaustive);
  EXPECT_EQ(a.byzantine, b.byzantine);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.report_exact, b.report_exact);
  EXPECT_EQ(a.report.radius, b.report.radius);
}

TEST(ByzantinePlacementTest, ThrowsBelowTwoProcesses) {
  ProgramBuilder b("solo");
  const VarId x = b.var("x", 0, 1, 0);
  b.convergence(
      "fix", [x](const State& s) { return s.get(x) != 0; },
      [x](State& s) { s.set(x, 0); }, {x}, {x}, 0, 0);
  Design solo;
  solo.name = "solo";
  solo.program = b.build();
  Invariant inv;
  inv.add(Constraint{"x = 0",
                     [x](const State& s) { return s.get(x) == 0; },
                     {x}});
  solo.invariant = std::move(inv);
  EXPECT_THROW(find_worst_byzantine_placement(solo, {}),
               std::invalid_argument);
}

TEST(TriageTest, SpanningTreeSurvivesByzantine) {
  const auto rows = synth::triage_design(path5_tree().design);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].regime, FaultRegime::kTransient);
  EXPECT_NE(rows[0].verdict, synth::TriageVerdict::kRefuted);
  EXPECT_EQ(rows[1].regime, FaultRegime::kByzantine);
  EXPECT_EQ(rows[1].verdict, synth::TriageVerdict::kSurvives);
}

TEST(TriageTest, RingByzantineRefuted) {
  const auto rows =
      synth::triage_design(make_dijkstra_ring(5, 5).design);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1].regime, FaultRegime::kByzantine);
  EXPECT_EQ(rows[1].verdict, synth::TriageVerdict::kRefuted);
}

TEST(TriageTest, EnvironmentCompositionFallsBackToWeakFairness) {
  const auto env =
      make_spanning_tree_with_environment(UndirectedGraph::path(4), 0);
  const auto rows = synth::triage_design(env.design);
  ASSERT_EQ(rows.size(), 3u);
  // The naive transient audit refutes the composed system (the free-running
  // environment action can starve convergence under an unfair daemon)...
  EXPECT_EQ(rows[0].regime, FaultRegime::kTransient);
  // ...while the fairness-aware environment audit recovers a weaker
  // guarantee instead of giving up.
  EXPECT_EQ(rows[2].regime, FaultRegime::kEnvironment);
  EXPECT_EQ(rows[2].verdict, synth::TriageVerdict::kFallsBack);
}

TEST(TriageTest, JsonAndDashboardShapes) {
  const auto rows = synth::triage_design(path5_tree().design);
  const std::string json = synth::triage_to_json(rows);
  EXPECT_NE(json.find("\"fault_model\":\"byzantine\""), std::string::npos);
  EXPECT_NE(json.find("\"verdict\":\"survives\""), std::string::npos);
  const obs::DashboardTable table = synth::triage_dashboard_table(rows);
  EXPECT_EQ(table.columns.size(), 4u);
  EXPECT_EQ(table.rows.size(), rows.size());
}

}  // namespace
}  // namespace nonmask
