// Tests for the experiment harness and the logging utility.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "engine/experiment.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/running_example.hpp"
#include "sched/daemons.hpp"
#include "util/logging.hpp"

namespace nonmask {
namespace {

TEST(ExperimentTest, ConvergingDesignReports100Percent) {
  const auto dd = make_diffusing(RootedTree::balanced(7, 2), true);
  ConvergenceExperiment config;
  config.trials = 50;
  config.seed = 42;
  config.max_steps = 100'000;
  const auto results = run_experiment(dd.design, config);
  EXPECT_DOUBLE_EQ(results.converged_fraction, 1.0);
  EXPECT_EQ(results.steps.count, 50u);
  EXPECT_GE(results.steps.max, results.steps.p95);
  EXPECT_GE(results.steps.p95, results.steps.p50);
  EXPECT_GE(results.steps.mean, results.steps.min);
}

TEST(ExperimentTest, DeterministicGivenSeed) {
  const auto dd = make_diffusing(RootedTree::chain(5), true);
  ConvergenceExperiment config;
  config.trials = 20;
  config.seed = 7;
  const auto a = run_experiment(dd.design, config);
  const auto b = run_experiment(dd.design, config);
  EXPECT_DOUBLE_EQ(a.steps.mean, b.steps.mean);
  EXPECT_DOUBLE_EQ(a.rounds.mean, b.rounds.mean);
}

TEST(ExperimentTest, LivelockingDesignReportsFailures) {
  const Design d = make_running_example(RunningExampleVariant::kWriteXBoth);
  ConvergenceExperiment config;
  config.trials = 200;
  config.seed = 3;
  config.max_steps = 2000;
  // Start in the livelock pocket (y == z) explicitly.
  config.make_start = [](const Program& p, Rng& rng) {
    State s = p.random_state(rng);
    s.set(p.find_variable("y"), 4);
    s.set(p.find_variable("z"), 4);
    s.set(p.find_variable("x"), 4);
    return s;
  };
  const auto results = run_experiment(d, config);
  EXPECT_LT(results.converged_fraction, 0.1);
}

TEST(ExperimentTest, CustomDaemonFactoryIsUsed) {
  const auto dd = make_diffusing(RootedTree::chain(4), true);
  ConvergenceExperiment config;
  config.trials = 10;
  config.make_daemon = [](std::uint64_t) {
    return DaemonPtr(new RoundRobinDaemon());
  };
  const auto results = run_experiment(dd.design, config);
  EXPECT_DOUBLE_EQ(results.converged_fraction, 1.0);
}

TEST(ExperimentTest, PerturbHookInjectsFaults) {
  const auto dd = make_diffusing(RootedTree::chain(4), true);
  ConvergenceExperiment config;
  config.trials = 5;
  config.max_steps = 50'000;
  // A hook that corrupts early but stops, so trials still converge.
  config.make_perturb = [&dd](const Program&) {
    const VarId c1 = dd.color[1];
    return [c1](std::size_t step, State& s) {
      if (step == 1) s.set(c1, kRed);
    };
  };
  const auto results = run_experiment(dd.design, config);
  EXPECT_DOUBLE_EQ(results.converged_fraction, 1.0);
}

TEST(ExperimentTest, ZeroTrialsYieldEmptyStats) {
  const auto dd = make_diffusing(RootedTree::chain(3), true);
  ConvergenceExperiment config;
  config.trials = 0;
  const auto results = run_experiment(dd.design, config);
  EXPECT_DOUBLE_EQ(results.converged_fraction, 0.0);
  EXPECT_EQ(results.steps.count, 0u);
}

TEST(LoggingTest, LevelsGateOutput) {
  std::ostringstream sink;
  Log::set_sink(&sink);
  Log::set_level(LogLevel::kWarn);
  NONMASK_INFO() << "hidden";
  NONMASK_WARN() << "shown " << 42;
  NONMASK_ERROR() << "also shown";
  Log::set_level(LogLevel::kOff);
  NONMASK_ERROR() << "off";
  Log::set_sink(nullptr);

  const std::string out = sink.str();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("shown 42"), std::string::npos);
  EXPECT_NE(out.find("also shown"), std::string::npos);
  EXPECT_EQ(out.find("off"), std::string::npos);
  EXPECT_NE(out.find("[WARN ]"), std::string::npos);
}

TEST(LoggingTest, EnabledReflectsLevel) {
  Log::set_level(LogLevel::kDebug);
  EXPECT_TRUE(Log::enabled(LogLevel::kDebug));
  EXPECT_TRUE(Log::enabled(LogLevel::kError));
  EXPECT_FALSE(Log::enabled(LogLevel::kTrace));
  Log::set_level(LogLevel::kOff);
  EXPECT_FALSE(Log::enabled(LogLevel::kError));
}

}  // namespace
}  // namespace nonmask
