// Dijkstra's three-state and four-state solutions ([9]): exhaustive
// stabilization, single-privilege closure, token circulation, and the
// constant-state property that distinguishes them from the K-state ring.
#include <gtest/gtest.h>

#include "checker/closure_check.hpp"
#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "checker/variant.hpp"
#include "engine/simulator.hpp"
#include "protocols/token_ring_small.hpp"
#include "sched/daemons.hpp"

namespace nonmask {
namespace {

struct Factory {
  const char* name;
  SmallRingDesign (*make)(int);
};

class SmallRingTest : public ::testing::TestWithParam<int> {
 protected:
  static SmallRingDesign build(int which, int n) {
    return which == 0 ? make_dijkstra_three_state(n)
                      : make_dijkstra_four_state(n);
  }
};

TEST_P(SmallRingTest, StabilizesExhaustively) {
  const int which = GetParam();
  for (int n = 3; n <= 6; ++n) {
    const auto sr = build(which, n);
    StateSpace space(sr.design.program);
    EXPECT_TRUE(check_closed(space, sr.design.S()).closed) << "n=" << n;
    const auto report =
        check_convergence(space, sr.design.S(), sr.design.T());
    EXPECT_EQ(report.verdict, ConvergenceVerdict::kConverges) << "n=" << n;
  }
}

TEST_P(SmallRingTest, ExactlyOnePrivilegeThroughoutS) {
  const auto sr = build(GetParam(), 5);
  StateSpace space(sr.design.program);
  const auto S = sr.design.S();
  State s(sr.design.program.num_variables());
  std::uint64_t count = 0;
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, s);
    if (!S(s)) continue;
    ++count;
    EXPECT_EQ(sr.privileges(s), 1);
  }
  EXPECT_GT(count, 0u);
}

TEST_P(SmallRingTest, NoDeadlockAnywhere) {
  const auto sr = build(GetParam(), 5);
  StateSpace space(sr.design.program);
  State s(sr.design.program.num_variables());
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, s);
    EXPECT_TRUE(sr.design.program.any_enabled(s));
  }
}

TEST_P(SmallRingTest, TokenVisitsEveryMachine) {
  const auto sr = build(GetParam(), 6);
  RoundRobinDaemon d;
  Simulator sim(sr.design.program, d);
  // Start anywhere; first converge, then watch circulation.
  Rng rng(5);
  RunOptions conv_opts;
  conv_opts.max_steps = 10'000;
  auto r = converge(sr.design, sr.design.program.random_state(rng), d,
                    conv_opts);
  ASSERT_TRUE(r.converged);

  State s = r.final_state;
  std::vector<int> visited(6, 0);
  RunOptions opts;
  opts.max_steps = 1;
  for (int step = 0; step < 600; ++step) {
    ASSERT_TRUE(sr.design.S()(s));
    for (const auto& a : sr.design.program.actions()) {
      if (a.enabled(s)) {
        ++visited[static_cast<std::size_t>(a.process())];
        break;
      }
    }
    s = sim.run(s, opts).final_state;
  }
  for (int j = 0; j < 6; ++j) {
    EXPECT_GT(visited[static_cast<std::size_t>(j)], 0) << "machine " << j;
  }
}

TEST_P(SmallRingTest, UnfairDaemonStillConverges) {
  // Dijkstra's solutions need no fairness (paper Section 8): worst-case
  // steps are finite under the adversarial daemon too.
  const auto sr = build(GetParam(), 6);
  AdversarialDaemon d(sr.design.invariant, 7);
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    RunOptions opts;
    opts.max_steps = 50'000;
    const auto r = converge(
        sr.design, sr.design.program.random_state(rng), d, opts);
    EXPECT_TRUE(r.converged) << trial;
  }
}

TEST_P(SmallRingTest, VariantExistsAndBoundsConvergence) {
  const auto sr = build(GetParam(), 5);
  StateSpace space(sr.design.program);
  const auto variant = compute_variant(space, sr.design.S());
  ASSERT_TRUE(variant.has_value());
  EXPECT_GT(variant->max_value(), 0u);
}

INSTANTIATE_TEST_SUITE_P(ThreeAndFourState, SmallRingTest,
                         ::testing::Values(0, 1),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return info.param == 0 ? "three_state"
                                                  : "four_state";
                         });

TEST(SmallRingStateTest, ConstantStatePerMachine) {
  // Unlike the K-state ring, per-machine state does not grow with n.
  for (int n : {3, 8, 16}) {
    const auto three = make_dijkstra_three_state(n);
    for (const VarId v : three.primary) {
      EXPECT_EQ(three.design.program.variable(v).domain_size(), 3u);
    }
    const auto four = make_dijkstra_four_state(n);
    for (int j = 0; j < n; ++j) {
      const auto xbits =
          four.design.program.variable(four.primary[static_cast<std::size_t>(j)])
              .domain_size();
      const auto ubits =
          four.design.program.variable(four.up[static_cast<std::size_t>(j)])
              .domain_size();
      EXPECT_LE(xbits * ubits, 4u);
    }
  }
}

TEST(SmallRingStateTest, ConstructorValidation) {
  EXPECT_THROW(make_dijkstra_three_state(2), std::invalid_argument);
  EXPECT_THROW(make_dijkstra_four_state(2), std::invalid_argument);
}

}  // namespace
}  // namespace nonmask
