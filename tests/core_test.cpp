// Unit tests for the core model: variables, states, actions, predicates,
// programs, builder, and candidate triples.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/builder.hpp"
#include "core/candidate.hpp"
#include "core/predicate.hpp"
#include "core/program.hpp"
#include "util/rng.hpp"

namespace nonmask {
namespace {

TEST(VariableSpecTest, DomainSizeAndContains) {
  VariableSpec v("x", -2, 5);
  EXPECT_EQ(v.domain_size(), 8u);
  EXPECT_TRUE(v.contains(-2));
  EXPECT_TRUE(v.contains(5));
  EXPECT_FALSE(v.contains(6));
  EXPECT_FALSE(v.contains(-3));
}

TEST(VariableSpecTest, ClampPinsToDomain) {
  VariableSpec v("x", 0, 3);
  EXPECT_EQ(v.clamp(-5), 0);
  EXPECT_EQ(v.clamp(2), 2);
  EXPECT_EQ(v.clamp(99), 3);
}

TEST(VariableSpecTest, EmptyDomainThrows) {
  EXPECT_THROW(VariableSpec("x", 3, 2), std::invalid_argument);
}

TEST(VariableSpecTest, SingletonDomain) {
  VariableSpec v("x", 7, 7);
  EXPECT_EQ(v.domain_size(), 1u);
  EXPECT_TRUE(v.contains(7));
}

TEST(VarIdTest, DefaultIsInvalid) {
  VarId id;
  EXPECT_FALSE(id.valid());
  EXPECT_TRUE(VarId(0).valid());
}

TEST(StateTest, GetSetRoundtrip) {
  State s(3);
  s.set(VarId(1), 42);
  EXPECT_EQ(s.get(VarId(1)), 42);
  EXPECT_EQ(s.get(VarId(0)), 0);
  EXPECT_EQ(s.size(), 3u);
}

TEST(StateTest, EqualityAndHash) {
  State a(2), b(2);
  a.set(VarId(0), 1);
  b.set(VarId(0), 1);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.set(VarId(1), 9);
  EXPECT_NE(a, b);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(PredicateTest, Combinators) {
  State s(1);
  auto is_zero = [](const State& st) { return st.get(VarId(0)) == 0; };
  auto p = p_and(is_zero, true_predicate());
  EXPECT_TRUE(p(s));
  EXPECT_FALSE(p_not(p)(s));
  EXPECT_TRUE(p_or(false_predicate(), is_zero)(s));
  EXPECT_FALSE(p_all({true_predicate(), false_predicate()})(s));
  EXPECT_TRUE(p_all({})(s));
}

TEST(InvariantTest, ViolationReporting) {
  Invariant inv;
  const VarId x(0);
  inv.add(Constraint{"x>=0", [x](const State& s) { return s.get(x) >= 0; }, {x}});
  inv.add(Constraint{"x<=5", [x](const State& s) { return s.get(x) <= 5; }, {x}});
  State s(1);
  s.set(x, 9);
  EXPECT_FALSE(inv.holds(s));
  EXPECT_EQ(inv.violation_count(s), 1u);
  EXPECT_EQ(inv.violated(s), (std::vector<std::size_t>{1}));
  s.set(x, 3);
  EXPECT_TRUE(inv.holds(s));
  EXPECT_TRUE(inv.as_predicate()(s));
}

Program make_counter_program() {
  ProgramBuilder b("counter");
  const VarId x = b.var("x", 0, 3);
  b.closure(
      "inc", [x](const State& s) { return s.get(x) < 3; },
      [x](State& s) { s.set(x, s.get(x) + 1); }, {x}, {x});
  b.closure(
      "reset", [x](const State& s) { return s.get(x) == 3; },
      [x](State& s) { s.set(x, 0); }, {x}, {x});
  return b.build();
}

TEST(ProgramTest, EnabledActions) {
  Program p = make_counter_program();
  State s = p.initial_state();
  EXPECT_EQ(p.enabled_actions(s), (std::vector<std::size_t>{0}));
  s.set(p.find_variable("x"), 3);
  EXPECT_EQ(p.enabled_actions(s), (std::vector<std::size_t>{1}));
  EXPECT_TRUE(p.any_enabled(s));
}

TEST(ProgramTest, StateCount) {
  ProgramBuilder b("p");
  b.var("a", 0, 9);
  b.var("b", 0, 1);
  Program p = b.build();
  ASSERT_TRUE(p.state_count().has_value());
  EXPECT_EQ(*p.state_count(), 20u);
}

TEST(ProgramTest, StateCountOverflowReturnsNullopt) {
  ProgramBuilder b("p");
  for (int i = 0; i < 10; ++i) {
    b.var("v" + std::to_string(i), 0, 2'000'000'000);
  }
  EXPECT_FALSE(b.build().state_count().has_value());
}

TEST(ProgramTest, FindVariable) {
  Program p = make_counter_program();
  EXPECT_TRUE(p.find_variable("x").valid());
  EXPECT_FALSE(p.find_variable("nope").valid());
}

TEST(ProgramTest, RandomStateInDomain) {
  ProgramBuilder b("p");
  b.var("a", -3, 3);
  b.var("b", 5, 9);
  Program p = b.build();
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(p.in_domain(p.random_state(rng)));
  }
}

TEST(ProgramTest, ClampBringsStateIntoDomain) {
  ProgramBuilder b("p");
  b.var("a", 0, 3);
  Program p = b.build();
  State s(1);
  s.set(VarId(0), 99);
  EXPECT_FALSE(p.in_domain(s));
  p.clamp(s);
  EXPECT_TRUE(p.in_domain(s));
  EXPECT_EQ(s.get(VarId(0)), 3);
}

TEST(ProgramTest, FormatState) {
  Program p = make_counter_program();
  EXPECT_EQ(p.format_state(p.initial_state()), "x=0");
}

TEST(ActionTest, ApplyDoesNotMutateInput) {
  Program p = make_counter_program();
  const State s = p.initial_state();
  const State next = p.action(0).apply(s);
  EXPECT_EQ(s.get(VarId(0)), 0);
  EXPECT_EQ(next.get(VarId(0)), 1);
}

TEST(ActionTest, ContractViolationDetected) {
  ProgramBuilder b("bad");
  const VarId x = b.var("x", 0, 3);
  const VarId y = b.var("y", 0, 3);
  // Declares writes {x} but also writes y.
  b.closure(
      "sneaky", true_predicate(),
      [x, y](State& s) {
        s.set(x, 1);
        s.set(y, 1);
      },
      {x}, {x});
  Program p = b.build();
  const auto illegal = p.action(0).contract_violations(p.initial_state());
  ASSERT_EQ(illegal.size(), 1u);
  EXPECT_EQ(illegal[0], y);
  EXPECT_NE(p.check_contracts(p.initial_state()), "");
}

TEST(ActionTest, KindNames) {
  EXPECT_STREQ(to_string(ActionKind::kClosure), "closure");
  EXPECT_STREQ(to_string(ActionKind::kConvergence), "convergence");
  EXPECT_STREQ(to_string(ActionKind::kFault), "fault");
}

TEST(CandidateTest, DefaultSIsConstraintsAndT) {
  ProgramBuilder b("p");
  const VarId x = b.var("x", 0, 5);
  CandidateTriple t;
  t.program = b.build();
  t.invariant.add(
      Constraint{"x<=2", [x](const State& s) { return s.get(x) <= 2; }, {x}});
  t.fault_span = [x](const State& s) { return s.get(x) <= 4; };
  State s(1);
  s.set(x, 2);
  EXPECT_TRUE(t.S()(s));
  s.set(x, 3);
  EXPECT_FALSE(t.S()(s));  // constraint fails
  EXPECT_TRUE(t.T()(s));
  s.set(x, 5);
  EXPECT_FALSE(t.T()(s));
}

TEST(CandidateTest, SOverrideWins) {
  CandidateTriple t;
  ProgramBuilder b("p");
  b.var("x", 0, 1);
  t.program = b.build();
  t.S_override = false_predicate();
  EXPECT_FALSE(t.S()(State(1)));
}

TEST(CandidateTest, AugmentedAddsConvergenceActions) {
  ProgramBuilder b("p");
  const VarId x = b.var("x", 0, 5);
  b.closure(
      "noop", false_predicate(), [](State&) {}, {}, {});
  CandidateTriple t;
  t.program = b.build();
  t.invariant.add(
      Constraint{"x==0", [x](const State& s) { return s.get(x) == 0; }, {x}});

  Action ca(
      "fix", ActionKind::kConvergence,
      [x](const State& s) { return s.get(x) != 0; },
      [x](State& s) { s.set(x, 0); }, {x}, {x});
  ca.set_constraint_id(0);
  Design d = t.augmented({ca});
  EXPECT_EQ(d.program.num_actions(), 2u);
  EXPECT_EQ(d.program.actions_of_kind(ActionKind::kConvergence).size(), 1u);

  // candidate() strips convergence actions back off.
  CandidateTriple back = d.candidate();
  EXPECT_EQ(back.program.num_actions(), 1u);
  EXPECT_EQ(back.program.action(0).kind(), ActionKind::kClosure);
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(5);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    hit_lo |= v == -2;
    hit_hi |= v == 2;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, SplitYieldsIndependentStream) {
  Rng a(9);
  Rng child = a.split();
  EXPECT_NE(a(), child());
}

}  // namespace
}  // namespace nonmask
