// Stabilizing tree aggregation (DSL-authored protocol).
#include <gtest/gtest.h>

#include "cgraph/theorems.hpp"
#include "checker/closure_check.hpp"
#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "engine/simulator.hpp"
#include "protocols/aggregation.hpp"
#include "sched/daemons.hpp"

namespace nonmask {
namespace {

TEST(AggregationTest, StabilizesExhaustivelyOnSmallTrees) {
  for (const auto& tree :
       {RootedTree::chain(3), RootedTree::star(3),
        RootedTree::balanced(4, 2)}) {
    const auto ad = make_aggregation(tree, 2);
    StateSpace space(ad.design.program);
    EXPECT_TRUE(check_closed(space, ad.design.S()).closed);
    const auto report = check_convergence(space, ad.design.S(), ad.design.T());
    EXPECT_EQ(report.verdict, ConvergenceVerdict::kConverges)
        << tree.size() << " nodes";
  }
}

TEST(AggregationTest, FixpointIsSubtreeMaxima) {
  Rng tree_rng(3);
  const auto tree = RootedTree::random(10, tree_rng);
  const auto ad = make_aggregation(tree, 9);
  RandomDaemon d(5);
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const auto r =
        converge(ad.design, ad.design.program.random_state(rng), d);
    ASSERT_TRUE(r.converged);
    for (int j = 0; j < tree.size(); ++j) {
      EXPECT_EQ(r.final_state.get(ad.aggregate[static_cast<std::size_t>(j)]),
                ad.expected(tree, r.final_state, j))
          << "node " << j;
    }
  }
}

TEST(AggregationTest, RootAggregateIsGlobalMaximum) {
  Rng tree_rng(11);
  const auto tree = RootedTree::random(30, tree_rng);
  const auto ad = make_aggregation(tree, 99);
  RandomDaemon d(13);
  Rng rng(17);
  const auto r = converge(ad.design, ad.design.program.random_state(rng), d);
  ASSERT_TRUE(r.converged);
  Value global = 0;
  for (const VarId in : ad.input) {
    global = std::max(global, r.final_state.get(in));
  }
  EXPECT_EQ(
      r.final_state.get(ad.aggregate[static_cast<std::size_t>(tree.root())]),
      global);
}

TEST(AggregationTest, Theorem2AppliesOnChains) {
  const auto ad = make_aggregation(RootedTree::chain(4), 2);
  StateSpace space(ad.design.program);
  ValidationOptions opts;
  opts.space = &space;
  const auto report = validate_design(ad.design, opts);
  EXPECT_TRUE(report.applies) << format_report(report);
}

TEST(AggregationTest, DerivedContractsHoldEverywhere) {
  // Read/write sets were derived by the DSL; verify the contracts anyway.
  const auto ad = make_aggregation(RootedTree::balanced(4, 2), 2);
  StateSpace space(ad.design.program);
  State s(ad.design.program.num_variables());
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, s);
    EXPECT_EQ(ad.design.program.check_contracts(s), "");
  }
}

TEST(AggregationTest, UnfairDaemonConverges) {
  const auto ad = make_aggregation(RootedTree::balanced(15, 2), 7);
  AdversarialDaemon d(ad.design.invariant, 3);
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    RunOptions opts;
    opts.max_steps = 100'000;
    const auto r = converge(
        ad.design, ad.design.program.random_state(rng), d, opts);
    EXPECT_TRUE(r.converged);
  }
}

TEST(AggregationTest, ConstructorValidation) {
  EXPECT_THROW(make_aggregation(RootedTree::chain(2), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace nonmask
