// E7: the theorem validators (Sections 5-7) accept exactly the paper's
// designs and reject the broken variants; verdicts agree with the exact
// checker on every accepted design.
#include <gtest/gtest.h>

#include "cgraph/theorems.hpp"
#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "protocols/coloring.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/leader_election.hpp"
#include "protocols/running_example.hpp"
#include "protocols/token_ring.hpp"

namespace nonmask {
namespace {

ValidationOptions exhaustive(const StateSpace& space) {
  ValidationOptions opts;
  opts.space = &space;
  return opts;
}

// --- Theorem 1 -------------------------------------------------------------

TEST(Theorem1Test, AcceptsPaperFigureExample) {
  const Design d = make_running_example(RunningExampleVariant::kWriteYZ);
  StateSpace space(d.program);
  const auto cg = infer_constraint_graph(d.program);
  ASSERT_TRUE(cg.ok);
  const auto report = validate_theorem1(d, cg.graph, exhaustive(space));
  EXPECT_TRUE(report.applies) << format_report(report);
  EXPECT_EQ(report.shape, GraphShape::kOutTree);
  EXPECT_FALSE(report.ranks.empty());
}

TEST(Theorem1Test, AcceptsSeparatedDiffusingDesign) {
  for (const auto& tree :
       {RootedTree::chain(4), RootedTree::star(4), RootedTree::balanced(5, 2)}) {
    const auto dd = make_diffusing(tree, /*combined=*/false);
    StateSpace space(dd.design.program);
    const auto cg = infer_constraint_graph(dd.design.program);
    ASSERT_TRUE(cg.ok);
    const auto report =
        validate_theorem1(dd.design, cg.graph, exhaustive(space));
    EXPECT_TRUE(report.applies) << format_report(report);
  }
}

TEST(Theorem1Test, RejectsCombinedDiffusingDesign) {
  // The combined propagate-or-correct action fires in states where its
  // constraint already holds — the Section 3 form obligation fails, which
  // is exactly why the paper validates before combining.
  const auto dd = make_diffusing(RootedTree::chain(3), /*combined=*/true);
  StateSpace space(dd.design.program);
  const auto cg = infer_constraint_graph(dd.design.program);
  ASSERT_TRUE(cg.ok);
  const auto report = validate_theorem1(dd.design, cg.graph, exhaustive(space));
  EXPECT_FALSE(report.applies);
  EXPECT_NE(report.failure.find("enabled only when"), std::string::npos)
      << format_report(report);
}

TEST(Theorem1Test, RejectsNonTreeShapes) {
  const Design d = make_running_example(RunningExampleVariant::kDecreaseX);
  StateSpace space(d.program);
  const auto cg = infer_constraint_graph(d.program);
  ASSERT_TRUE(cg.ok);
  const auto report = validate_theorem1(d, cg.graph, exhaustive(space));
  EXPECT_FALSE(report.applies);
  EXPECT_NE(report.failure.find("not an out-tree"), std::string::npos);
}

TEST(Theorem1Test, RejectsClosureActionBreakingAConstraint) {
  // Take the good design and add a closure action that violates x != y.
  Design d = make_running_example(RunningExampleVariant::kWriteYZ);
  const VarId x = d.program.find_variable("x");
  const VarId y = d.program.find_variable("y");
  d.program.add_action(Action(
      "vandal", ActionKind::kClosure,
      [x, y](const State& s) { return s.get(x) != s.get(y); },
      [x, y](State& s) { s.set(y, s.get(x)); }, {x, y}, {y}));
  StateSpace space(d.program);
  const auto cg = infer_constraint_graph(d.program);
  ASSERT_TRUE(cg.ok);
  const auto report = validate_theorem1(d, cg.graph, exhaustive(space));
  EXPECT_FALSE(report.applies);
  EXPECT_NE(report.failure.find("vandal"), std::string::npos);
}

// --- Theorem 2 -------------------------------------------------------------

TEST(Theorem2Test, AcceptsDecreaseXVariant) {
  const Design d = make_running_example(RunningExampleVariant::kDecreaseX);
  StateSpace space(d.program);
  const auto cg = infer_constraint_graph(d.program);
  ASSERT_TRUE(cg.ok);
  const auto report = validate_theorem2(d, cg.graph, exhaustive(space));
  EXPECT_TRUE(report.applies) << format_report(report);
  // Certificate: at node {x}, fix-leq must precede fix-neq.
  const VarId x = d.program.find_variable("x");
  const auto& order =
      report.node_orders[static_cast<std::size_t>(cg.graph.node_of(x))];
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(d.program.action(order[0]).name().substr(0, 7), "fix-leq");
  EXPECT_EQ(d.program.action(order[1]).name().substr(0, 7), "fix-neq");
}

TEST(Theorem2Test, RejectsWriteXBothVariantForWantOfOrder) {
  const Design d = make_running_example(RunningExampleVariant::kWriteXBoth);
  StateSpace space(d.program);
  const auto cg = infer_constraint_graph(d.program);
  ASSERT_TRUE(cg.ok);
  const auto report = validate_theorem2(d, cg.graph, exhaustive(space));
  EXPECT_FALSE(report.applies);
  EXPECT_NE(report.failure.find("linear order"), std::string::npos)
      << format_report(report);
}

TEST(Theorem2Test, AcceptsOutTreesToo) {
  // Out-trees are self-looping graphs with trivial orders.
  const Design d = make_running_example(RunningExampleVariant::kWriteYZ);
  StateSpace space(d.program);
  const auto cg = infer_constraint_graph(d.program);
  const auto report = validate_theorem2(d, cg.graph, exhaustive(space));
  EXPECT_TRUE(report.applies) << format_report(report);
}

TEST(Theorem2Test, AcceptsLeaderElection) {
  const auto le = make_leader_election(4);
  StateSpace space(le.design.program);
  const auto cg = infer_constraint_graph(le.design.program);
  ASSERT_TRUE(cg.ok);
  // Not an out-tree: the self-loop at {ldr.0} disqualifies Theorem 1 ...
  EXPECT_FALSE(
      validate_theorem1(le.design, cg.graph, exhaustive(space)).applies);
  // ... but Theorem 2 applies.
  const auto report = validate_theorem2(le.design, cg.graph, exhaustive(space));
  EXPECT_TRUE(report.applies) << format_report(report);
}

// --- Theorem 3 -------------------------------------------------------------

TEST(Theorem3Test, AcceptsLayeredTokenRing) {
  for (const int n : {3, 4}) {
    const auto tr = make_token_ring_bounded(n, 3, /*combined=*/false);
    StateSpace space(tr.design.program);
    const auto report =
        validate_theorem3(tr.design, tr.layers, exhaustive(space));
    EXPECT_TRUE(report.applies) << "n=" << n << "\n" << format_report(report);
  }
}

TEST(Theorem3Test, RejectsTokenRingWithLayersSwapped) {
  // Swapping the layers breaks the hierarchy: with equality as the lowest
  // layer, the increment closure action must preserve x.0 = x.1 whenever
  // ¬S — and the state (2,2,3,2) refutes that (n = 4 is the smallest size
  // where the counterexample is not vacuously excluded).
  const auto tr = make_token_ring_bounded(4, 3, /*combined=*/false);
  StateSpace space(tr.design.program);
  const std::vector<std::vector<std::size_t>> swapped{tr.layers[1],
                                                      tr.layers[0]};
  const auto report = validate_theorem3(tr.design, swapped, exhaustive(space));
  EXPECT_FALSE(report.applies);
}

TEST(Theorem3Test, AcceptsColoringWithPerIdLayers) {
  for (const auto& g :
       {UndirectedGraph::cycle(4), UndirectedGraph::path(5),
        UndirectedGraph::complete(3)}) {
    const auto cd = make_coloring(g);
    StateSpace space(cd.design.program);
    const auto report =
        validate_theorem3(cd.design, cd.layers, exhaustive(space));
    EXPECT_TRUE(report.applies) << format_report(report);
  }
}

// --- Agreement with the exact checker (soundness spot-check) ---------------

TEST(TheoremSoundnessTest, AcceptedDesignsReallyConverge) {
  struct Case {
    Design design;
  };
  std::vector<Design> accepted;
  accepted.push_back(make_running_example(RunningExampleVariant::kWriteYZ));
  accepted.push_back(make_running_example(RunningExampleVariant::kDecreaseX));
  accepted.push_back(
      make_diffusing(RootedTree::balanced(4, 2), false).design);
  accepted.push_back(make_leader_election(4).design);

  for (const Design& d : accepted) {
    StateSpace space(d.program);
    const auto theorem = validate_design(d, exhaustive(space));
    EXPECT_TRUE(theorem.applies) << d.name << "\n" << format_report(theorem);
    const auto exact = check_convergence(space, d.S(), d.T());
    EXPECT_EQ(exact.verdict, ConvergenceVerdict::kConverges) << d.name;
  }
}

TEST(TheoremSoundnessTest, RejectedBrokenDesignReallyLivelocks) {
  const Design d = make_running_example(RunningExampleVariant::kWriteXBoth);
  StateSpace space(d.program);
  EXPECT_FALSE(validate_design(d, exhaustive(space)).applies);
  EXPECT_EQ(check_convergence(space, d.S(), d.T()).verdict,
            ConvergenceVerdict::kViolated);
}

TEST(ValidateDesignTest, PicksTheorem1WhenPossible) {
  const Design d = make_running_example(RunningExampleVariant::kWriteYZ);
  StateSpace space(d.program);
  const auto report = validate_design(d, exhaustive(space));
  EXPECT_TRUE(report.applies);
  EXPECT_NE(report.theorem.find("Theorem 1"), std::string::npos);
}

TEST(ValidateDesignTest, FallsBackToTheorem2) {
  const Design d = make_running_example(RunningExampleVariant::kDecreaseX);
  StateSpace space(d.program);
  const auto report = validate_design(d, exhaustive(space));
  EXPECT_TRUE(report.applies);
  EXPECT_NE(report.theorem.find("Theorem 2"), std::string::npos);
}

TEST(ValidateDesignTest, SampledModeAgreesOnSmallDesigns) {
  // Without a state space, obligations run sampled; verdicts agree here.
  ValidationOptions opts;
  opts.samples = 20'000;
  EXPECT_TRUE(
      validate_design(make_running_example(RunningExampleVariant::kWriteYZ),
                      opts)
          .applies);
  EXPECT_FALSE(
      validate_design(make_running_example(RunningExampleVariant::kWriteXBoth),
                      opts)
          .applies);
}

TEST(FormatReportTest, MentionsVerdictAndShape) {
  const Design d = make_running_example(RunningExampleVariant::kWriteYZ);
  StateSpace space(d.program);
  const auto cg = infer_constraint_graph(d.program);
  const auto report = validate_theorem1(d, cg.graph, exhaustive(space));
  const std::string text = format_report(report);
  EXPECT_NE(text.find("APPLIES"), std::string::npos);
  EXPECT_NE(text.find("out-tree"), std::string::npos);
  EXPECT_NE(text.find("obligations"), std::string::npos);
}

}  // namespace
}  // namespace nonmask
