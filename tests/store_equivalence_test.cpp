// The two-backend contract (store/facade.hpp): every report the store
// backend produces must be byte-identical to the legacy dense backend, on
// every protocol, at every thread count. This suite checks the contract
// field-by-field — counts, verdicts, and full counterexample states — for
// closure, convergence, reachability, fault span, and the end-to-end
// tolerance verdict, across 1/2/8 worker threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "checker/closure_check.hpp"
#include "checker/convergence_check.hpp"
#include "checker/fault_span.hpp"
#include "checker/state_space.hpp"
#include "checker/variant.hpp"
#include "core/candidate.hpp"
#include "protocols/coloring.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/distributed_reset.hpp"
#include "protocols/running_example.hpp"
#include "protocols/token_ring.hpp"
#include "protocols/token_ring_small.hpp"
#include "store/facade.hpp"

namespace nonmask {
namespace {

struct Case {
  std::string label;
  Design design;
};

std::vector<Case> equivalence_cases() {
  std::vector<Case> cases;
  // kWriteXBoth is deliberately broken: its convergence check produces a
  // cycle counterexample, so the counterexample paths are compared too.
  cases.push_back({"running-example",
                   make_running_example(RunningExampleVariant::kWriteYZ)});
  cases.push_back({"running-example-broken",
                   make_running_example(RunningExampleVariant::kWriteXBoth)});
  cases.push_back(
      {"diffusing", make_diffusing(RootedTree::balanced(3, 2), true).design});
  cases.push_back({"token-ring-small", make_dijkstra_three_state(3).design});
  cases.push_back({"dijkstra-ring", make_dijkstra_ring(4, 5).design});
  cases.push_back(
      {"coloring", make_coloring(UndirectedGraph::cycle(4)).design});
  return cases;
}

store::StoreConfig config_for(store::StoreBackend backend, unsigned threads) {
  store::StoreConfig cfg;
  cfg.backend = backend;
  cfg.threads = threads;
  cfg.grain = 128;  // small grain: tiny spaces still cross chunk boundaries
  return cfg;
}

void expect_same_closure(const ClosureReport& a, const ClosureReport& b,
                         const std::string& ctx) {
  EXPECT_EQ(a.closed, b.closed) << ctx;
  EXPECT_EQ(a.states_checked, b.states_checked) << ctx;
  EXPECT_EQ(a.transitions_checked, b.transitions_checked) << ctx;
  ASSERT_EQ(a.violation.has_value(), b.violation.has_value()) << ctx;
  if (a.violation) {
    EXPECT_EQ(a.violation->state, b.violation->state) << ctx;
    EXPECT_EQ(a.violation->action, b.violation->action) << ctx;
    EXPECT_EQ(a.violation->successor, b.violation->successor) << ctx;
  }
}

void expect_same_convergence(const ConvergenceReport& a,
                             const ConvergenceReport& b,
                             const std::string& ctx) {
  EXPECT_EQ(a.verdict, b.verdict) << ctx;
  EXPECT_EQ(a.states_in_T, b.states_in_T) << ctx;
  EXPECT_EQ(a.states_in_S, b.states_in_S) << ctx;
  EXPECT_EQ(a.region_states, b.region_states) << ctx;
  EXPECT_EQ(a.transitions, b.transitions) << ctx;
  EXPECT_EQ(a.max_steps_to_S, b.max_steps_to_S) << ctx;
  ASSERT_EQ(a.cycle.has_value(), b.cycle.has_value()) << ctx;
  if (a.cycle) {
    EXPECT_EQ(*a.cycle, *b.cycle) << ctx;
  }
  ASSERT_EQ(a.deadlock.has_value(), b.deadlock.has_value()) << ctx;
  if (a.deadlock) {
    EXPECT_EQ(*a.deadlock, *b.deadlock) << ctx;
  }
}

void expect_same_set(const StateSet& a, const StateSet& b,
                     const std::string& ctx) {
  ASSERT_EQ(a.size(), b.size()) << ctx;
  for (std::uint64_t code = 0; code < a.space().size(); ++code) {
    ASSERT_EQ(a.contains_code(code), b.contains_code(code))
        << ctx << " code " << code;
  }
}

class BackendEquivalenceTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(BackendEquivalenceTest, AllReportsByteIdentical) {
  const unsigned threads = GetParam();
  for (const auto& c : equivalence_cases()) {
    const StateSpace space(c.design.program);
    const auto dense =
        config_for(store::StoreBackend::kLegacyDense, threads);
    const auto packed = config_for(store::StoreBackend::kStore, threads);
    const std::string ctx = c.label + " @" + std::to_string(threads) + "t";

    expect_same_closure(check_closed(space, c.design.S()),
                        store::check_closed_via(packed, space, c.design.S()),
                        ctx + " closure(S) vs serial");
    expect_same_closure(store::check_closed_via(dense, space, c.design.T()),
                        store::check_closed_via(packed, space, c.design.T()),
                        ctx + " closure(T)");

    expect_same_convergence(
        check_convergence(space, c.design.S(), c.design.T()),
        store::check_convergence_via(packed, space, c.design.S(),
                                     c.design.T()),
        ctx + " convergence vs serial");
    expect_same_convergence(
        store::check_convergence_via(dense, space, c.design.S(),
                                     c.design.T()),
        store::check_convergence_via(packed, space, c.design.S(),
                                     c.design.T()),
        ctx + " convergence");

    const auto faults = c.design.program.actions_of_kind(ActionKind::kFault);
    expect_same_set(
        compute_fault_span(space, c.design.S(), faults),
        store::compute_fault_span_via(packed, space, c.design.S(), faults),
        ctx + " fault-span");

    const auto tol_dense = store::verify_tolerance_via(dense, space, c.design);
    const auto tol_store =
        store::verify_tolerance_via(packed, space, c.design);
    EXPECT_EQ(tol_dense.S_closed, tol_store.S_closed) << ctx;
    EXPECT_EQ(tol_dense.T_closed, tol_store.T_closed) << ctx;
    expect_same_convergence(tol_dense.convergence, tol_store.convergence,
                            ctx + " tolerance");
    EXPECT_EQ(tol_dense.tolerant(), tol_store.tolerant()) << ctx;
  }
}

// A capped reachability run truncates at the same state under both
// backends — the cap is part of the determinism contract, not best-effort.
TEST_P(BackendEquivalenceTest, CappedReachabilityTruncatesIdentically) {
  const unsigned threads = GetParam();
  const auto dd = make_dijkstra_ring(4, 5);
  const StateSpace space(dd.design.program);
  const auto actions = non_fault_actions(dd.design.program);
  FaultSpanOptions opts;
  opts.max_states = 101;

  const auto dense = config_for(store::StoreBackend::kLegacyDense, threads);
  const auto packed = config_for(store::StoreBackend::kStore, threads);
  expect_same_set(
      store::compute_reachable_via(dense, space, dd.design.S(), actions,
                                   opts),
      store::compute_reachable_via(packed, space, dd.design.S(), actions,
                                   opts),
      "capped reach @" + std::to_string(threads) + "t");
}

// The weakly-fair (Tarjan/SCC) checker runs store-native under kStore:
// the compact bookkeeping must reproduce the dense reports byte for byte,
// including the closed-SCC cycle counterexample of the broken running
// example and the fairness-rescued distributed reset (where the unfair
// check is kViolated but the SCC escape analysis proves convergence).
TEST_P(BackendEquivalenceTest, WeaklyFairReportsByteIdentical) {
  const unsigned threads = GetParam();
  auto cases = equivalence_cases();
  cases.push_back(
      {"distributed-reset",
       make_distributed_reset(RootedTree::balanced(3, 2), 2, true).design});
  for (const auto& c : cases) {
    const StateSpace space(c.design.program);
    const auto dense =
        config_for(store::StoreBackend::kLegacyDense, threads);
    const auto packed = config_for(store::StoreBackend::kStore, threads);
    const std::string ctx =
        c.label + " fair @" + std::to_string(threads) + "t";

    expect_same_convergence(
        check_convergence_weakly_fair(space, c.design.S(), c.design.T()),
        store::check_convergence_weakly_fair_via(packed, space, c.design.S(),
                                                 c.design.T()),
        ctx + " vs serial");
    expect_same_convergence(
        store::check_convergence_weakly_fair_via(dense, space, c.design.S(),
                                                 c.design.T()),
        store::check_convergence_weakly_fair_via(packed, space, c.design.S(),
                                                 c.design.T()),
        ctx);
  }
}

// Variant extraction through the store facade produces the same function
// (the raw per-state distance table) as the legacy serial extraction, and
// the same "no variant exists" answer for a non-converging design.
TEST_P(BackendEquivalenceTest, VariantExtractionMatchesDense) {
  const unsigned threads = GetParam();
  for (const auto& c : equivalence_cases()) {
    const StateSpace space(c.design.program);
    const auto packed = config_for(store::StoreBackend::kStore, threads);
    const std::string ctx =
        c.label + " variant @" + std::to_string(threads) + "t";

    const auto serial = compute_variant(space, c.design.S());
    const auto via = store::compute_variant_via(packed, space, c.design.S());
    ASSERT_EQ(serial.has_value(), via.has_value()) << ctx;
    if (serial) {
      EXPECT_EQ(serial->raw(), via->raw()) << ctx;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, BackendEquivalenceTest,
                         ::testing::Values(1u, 2u, 8u));

}  // namespace
}  // namespace nonmask
