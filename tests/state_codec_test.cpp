// Codec properties: mixed-radix encode/decode and bit-packed pack/unpack
// must be mutually consistent bijections on every seed protocol, including
// the degenerate shapes (single variable, singleton domains, maximal
// domains). Plus the two hardening regressions from the store work: exact
// uint64 overflow detection in Program::state_count(), and the avalanche
// quality of State::hash().
#include <gtest/gtest.h>

#include <bitset>
#include <climits>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "checker/state_space.hpp"
#include "core/program.hpp"
#include "protocols/coloring.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/leader_election.hpp"
#include "protocols/running_example.hpp"
#include "protocols/token_ring.hpp"
#include "protocols/token_ring_small.hpp"
#include "store/packed.hpp"
#include "util/hash.hpp"

namespace nonmask {
namespace {

struct CodecCase {
  std::string label;
  Program program;
};

std::vector<CodecCase> codec_cases() {
  std::vector<CodecCase> cases;
  cases.push_back({"running-example",
                   make_running_example(RunningExampleVariant::kWriteYZ)
                       .program});
  cases.push_back({"diffusing",
                   make_diffusing(RootedTree::balanced(3, 2), true)
                       .design.program});
  cases.push_back({"dijkstra-ring", make_dijkstra_ring(4, 5).design.program});
  cases.push_back(
      {"three-state", make_dijkstra_three_state(3).design.program});
  cases.push_back(
      {"coloring", make_coloring(UndirectedGraph::cycle(4)).design.program});
  cases.push_back(
      {"leader-election", make_leader_election(3).design.program});

  Program single("single-variable");
  single.add_variable({"x", -3, 11});
  cases.push_back({"single-variable", std::move(single)});

  Program singletons("with-singletons");
  singletons.add_variable({"a", 5, 5});
  singletons.add_variable({"b", 0, 2});
  singletons.add_variable({"c", -1, -1});
  cases.push_back({"with-singletons", std::move(singletons)});
  return cases;
}

TEST(StateCodecTest, EncodeDecodeAndPackUnpackRoundTripEverywhere) {
  for (const auto& c : codec_cases()) {
    const StateSpace space(c.program);
    const store::PackedLayout layout(c.program);
    std::vector<std::uint64_t> words(layout.words());
    State s(c.program.num_variables());
    State back(c.program.num_variables());
    for (std::uint64_t code = 0; code < space.size(); ++code) {
      space.decode_into(code, s);
      ASSERT_EQ(space.encode(s), code) << c.label << " code " << code;
      layout.pack(s, words.data());
      layout.unpack(words.data(), back);
      ASSERT_EQ(back, s) << c.label << " code " << code;
      // The two codecs agree on identity: packing the unpacked state
      // re-encodes to the same mixed-radix code.
      ASSERT_EQ(space.encode(back), code) << c.label << " code " << code;
    }
  }
}

TEST(StateCodecTest, DistinctStatesPackToDistinctWords) {
  for (const auto& c : codec_cases()) {
    const StateSpace space(c.program);
    const store::PackedLayout layout(c.program);
    std::vector<std::uint64_t> words(layout.words());
    State s(c.program.num_variables());
    std::set<std::vector<std::uint64_t>> seen;
    for (std::uint64_t code = 0; code < space.size(); ++code) {
      space.decode_into(code, s);
      layout.pack(s, words.data());
      ASSERT_TRUE(seen.insert(words).second)
          << c.label << " collides at code " << code;
    }
  }
}

TEST(StateCodecTest, MaxDomainVariableRoundTrips) {
  // A variable spanning the full int32 range packs into exactly 32 bits;
  // the extremes and the sign boundary must survive both codecs.
  Program p("max-domain");
  p.add_variable({"wide", INT32_MIN, INT32_MAX});
  p.add_variable({"bit", 0, 1});
  const store::PackedLayout layout(p);
  EXPECT_EQ(layout.width(0), 32u);
  EXPECT_EQ(layout.total_bits(), 33u);

  const std::uint64_t count = p.state_count().value();
  EXPECT_EQ(count, (std::uint64_t{1} << 32) * 2);
  const StateSpace space(p, /*budget=*/count);

  std::vector<std::uint64_t> words(layout.words());
  State back(2);
  for (const Value v : {INT32_MIN, INT32_MIN + 1, -1, 0, 1, INT32_MAX - 1,
                        INT32_MAX}) {
    for (const Value b : {0, 1}) {
      State s(2);
      s.set(VarId(0), v);
      s.set(VarId(1), b);
      layout.pack(s, words.data());
      layout.unpack(words.data(), back);
      ASSERT_EQ(back, s) << "wide=" << v << " bit=" << b;
      ASSERT_EQ(space.decode(space.encode(s)), s) << "wide=" << v;
    }
  }
}

// ------------------------------------------------- state_count overflow

Program product_of(int vars, Value hi) {
  Program p("product");
  for (int i = 0; i < vars; ++i) {
    p.add_variable({"v" + std::to_string(i), 0, hi});
  }
  return p;
}

TEST(StateCountOverflowTest, ExactlyTwoToThe64Overflows) {
  // 16 variables of domain 16: the product is exactly 2^64, one past the
  // largest representable count. Must be nullopt, not a silent wrap to 0.
  const Program p = product_of(16, 15);
  EXPECT_FALSE(p.state_count().has_value());
  EXPECT_THROW(StateSpace(p, ~std::uint64_t{0}), StateSpaceTooLarge);
}

TEST(StateCountOverflowTest, TwoToThe63IsRepresentable) {
  // 63 binary variables: 2^63 states. The old conservative bound rejected
  // every count at or above 2^63; the exact check accepts it.
  const Program p = product_of(63, 1);
  ASSERT_TRUE(p.state_count().has_value());
  EXPECT_EQ(*p.state_count(), std::uint64_t{1} << 63);
  // Still over any practical budget — the budget throw must name it.
  EXPECT_THROW(StateSpace(p, 1'000'000), StateSpaceTooLarge);
}

TEST(StateCountOverflowTest, LargestRepresentableProductSurvives) {
  // 2^32 * (2^32 - 1) < 2^64 must not be rejected.
  Program p("near-max");
  p.add_variable({"a", INT32_MIN, INT32_MAX});            // 2^32 values
  p.add_variable({"b", INT32_MIN, INT32_MAX - 1});        // 2^32 - 1
  ASSERT_TRUE(p.state_count().has_value());
  EXPECT_EQ(*p.state_count(),
            (std::uint64_t{1} << 32) * ((std::uint64_t{1} << 32) - 1));
  // One more binary variable pushes the product past 2^64.
  p.add_variable({"c", 0, 1});
  EXPECT_FALSE(p.state_count().has_value());
}

// ------------------------------------------------------- hash avalanche

TEST(StateHashTest, SingleValueChangeFlipsAboutHalfTheBits) {
  // Avalanche: over many single-variable perturbations, the mean Hamming
  // distance between old and new hash must sit near 32 of 64 bits. Plain
  // FNV-1a fails this badly for the high bits, which is what the
  // splitmix64 finalizer fixes (util/hash.hpp).
  const Program p = make_dijkstra_ring(4, 5).design.program;
  const StateSpace space(p);
  std::uint64_t flips = 0;
  std::uint64_t samples = 0;
  State s(p.num_variables());
  for (std::uint64_t code = 0; code < space.size(); code += 3) {
    space.decode_into(code, s);
    const std::uint64_t h = s.hash();
    for (std::uint32_t i = 0; i < p.num_variables(); ++i) {
      const auto& spec = p.variable(VarId(i));
      if (spec.lo == spec.hi) continue;
      const Value old = s.get(VarId(i));
      s.set(VarId(i), old == spec.hi ? spec.lo : old + 1);
      flips += std::bitset<64>(h ^ s.hash()).count();
      ++samples;
      s.set(VarId(i), old);
    }
  }
  const double mean = static_cast<double>(flips) / samples;
  EXPECT_GT(mean, 28.0);
  EXPECT_LT(mean, 36.0);
}

TEST(StateHashTest, HighBitsSpreadAcrossShards) {
  // Shard-by-prefix consumers (the concurrent set) take the top bits; the
  // states of one protocol must not pile into a few of 64 buckets.
  const Program p = make_dijkstra_ring(6, 7).design.program;
  const StateSpace space(p);
  std::vector<std::uint64_t> buckets(64, 0);
  State s(p.num_variables());
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, s);
    ++buckets[s.hash() >> 58];
  }
  const double expect = static_cast<double>(space.size()) / 64.0;
  for (std::size_t b = 0; b < 64; ++b) {
    EXPECT_GT(buckets[b], expect / 4) << "bucket " << b << " starved";
    EXPECT_LT(buckets[b], expect * 4) << "bucket " << b << " overloaded";
  }
}

TEST(StateHashTest, NoCollisionsAcrossSmallSpaces) {
  for (const auto& c : codec_cases()) {
    const StateSpace space(c.program);
    std::set<std::uint64_t> hashes;
    State s(c.program.num_variables());
    for (std::uint64_t code = 0; code < space.size(); ++code) {
      space.decode_into(code, s);
      hashes.insert(s.hash());
    }
    // 64-bit hashes over a few thousand states: any collision means the
    // mixing is broken, not that we got unlucky.
    EXPECT_EQ(hashes.size(), space.size()) << c.label;
  }
}

TEST(Avalanche64Test, IsABijectionOnSamples) {
  // splitmix64's finalizer is invertible (0 maps to 0 — its one fixed
  // point, unreachable from State::hash since the FNV accumulator starts
  // at the nonzero offset basis); sampled outputs must be distinct.
  std::set<std::uint64_t> out;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    out.insert(avalanche64(i * 0x9e3779b97f4a7c15ULL));
  }
  EXPECT_EQ(out.size(), 10'000u);
  EXPECT_NE(avalanche64(1), 1u);
}

}  // namespace
}  // namespace nonmask
