// Exact synchronous-daemon convergence checking. All shipped protocols
// break symmetry via ids or distinguished nodes, so they converge
// synchronously too; the classic failure mode — two symmetric nodes
// swapping values forever — is reconstructed explicitly and caught.
#include <gtest/gtest.h>

#include "checker/state_space.hpp"
#include "checker/synchronous.hpp"
#include "core/builder.hpp"
#include "engine/simulator.hpp"
#include "protocols/coloring.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/independent_set.hpp"
#include "protocols/leader_election.hpp"
#include "protocols/token_ring.hpp"
#include "protocols/token_ring_small.hpp"
#include "sched/daemons.hpp"

namespace nonmask {
namespace {

TEST(SynchronousTest, ShippedProtocolsConvergeSynchronously) {
  std::vector<Design> designs;
  designs.push_back(make_diffusing(RootedTree::balanced(5, 2), true).design);
  designs.push_back(make_dijkstra_ring(5, 6).design);
  designs.push_back(make_dijkstra_three_state(4).design);
  designs.push_back(make_dijkstra_four_state(4).design);
  designs.push_back(make_leader_election(4).design);
  designs.push_back(make_coloring(UndirectedGraph::cycle(4)).design);
  designs.push_back(
      make_independent_set(UndirectedGraph::cycle(5)).design);
  designs.push_back(make_token_ring_bounded(4, 3, true).design);
  for (const Design& d : designs) {
    StateSpace space(d.program);
    const auto report =
        check_convergence_synchronous(space, d.S(), d.T());
    EXPECT_TRUE(report.converges) << d.name;
  }
}

TEST(SynchronousTest, SynchronousWorstCaseBeatsInterleaved) {
  // Parallelism pays: the synchronous worst case is far below the
  // interleaved one (which counts single moves).
  const auto dd = make_diffusing(RootedTree::chain(4), true);
  StateSpace space(dd.design.program);
  const auto sync =
      check_convergence_synchronous(space, dd.design.S(), dd.design.T());
  ASSERT_TRUE(sync.converges);
  EXPECT_LE(sync.max_steps_to_S, 4u);
}

/// Two anonymous nodes trying to agree by copying each other: converges
/// under any central daemon, livelocks synchronously (the values swap
/// forever). The textbook reason symmetric anonymous protocols need a
/// symmetry breaker.
Design symmetric_agreement() {
  ProgramBuilder b("symmetric-agreement");
  const VarId a = b.boolean("a", 0);
  const VarId c = b.boolean("b", 1);
  b.closure(
      "copy@0", [a, c](const State& s) { return s.get(a) != s.get(c); },
      [a, c](State& s) { s.set(a, s.get(c)); }, {a, c}, {a}, 0);
  b.closure(
      "copy@1", [a, c](const State& s) { return s.get(a) != s.get(c); },
      [a, c](State& s) { s.set(c, s.get(a)); }, {a, c}, {c}, 1);
  Design d;
  d.program = b.build();
  d.S_override = [a, c](const State& s) { return s.get(a) == s.get(c); };
  d.fault_span = true_predicate();
  return d;
}

TEST(SynchronousTest, SymmetricAgreementLivelocksSynchronously) {
  const Design d = symmetric_agreement();
  StateSpace space(d.program);
  const auto sync = check_convergence_synchronous(space, d.S(), d.T());
  EXPECT_FALSE(sync.converges);
  ASSERT_TRUE(sync.cycle.has_value());
  EXPECT_EQ(sync.cycle->size(), 2u);  // (0,1) <-> (1,0)
}

TEST(SynchronousTest, SymmetricAgreementConvergesInterleaved) {
  const Design d = symmetric_agreement();
  StateSpace space(d.program);
  // Exact interleaved checking (any central daemon converges in one step).
  RandomDaemon daemon(5);
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const auto r = converge(d, d.program.random_state(rng), daemon);
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.steps, 1u);
  }
}

TEST(SynchronousTest, SimulatorAgreesWithChecker) {
  // The engine's SynchronousDaemon must reproduce the checker's verdicts:
  // livelock for the symmetric pair, convergence for diffusing.
  const Design sym = symmetric_agreement();
  SynchronousDaemon daemon;
  State start(2);
  start.set(VarId(0), 0);
  start.set(VarId(1), 1);
  RunOptions opts;
  opts.max_steps = 100;
  opts.stop_when = sym.S();
  Simulator sim(sym.program, daemon);
  EXPECT_TRUE(sim.run(start, opts).exhausted);

  const auto dd = make_diffusing(RootedTree::balanced(7, 2), true);
  SynchronousDaemon daemon2;
  Rng rng(3);
  const auto r = converge(dd.design, dd.design.program.random_state(rng),
                          daemon2);
  EXPECT_TRUE(r.converged);
}

TEST(SynchronousTest, DeadlockDetected) {
  ProgramBuilder b("stuck");
  const VarId x = b.var("x", 0, 2);
  b.closure(
      "once", [x](const State& s) { return s.get(x) == 2; },
      [x](State& s) { s.set(x, 1); }, {x}, {x});
  Design d;
  d.program = b.build();
  d.S_override = [x](const State& s) { return s.get(x) == 0; };
  StateSpace space(d.program);
  const auto report = check_convergence_synchronous(space, d.S(), d.T());
  EXPECT_FALSE(report.converges);
  EXPECT_TRUE(report.deadlock.has_value());
}

}  // namespace
}  // namespace nonmask
