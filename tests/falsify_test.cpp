// Monte-Carlo falsification: sound cycle/deadlock certificates at scales
// the exhaustive checker cannot touch.
#include <gtest/gtest.h>

#include "checker/convergence_check.hpp"
#include "checker/falsify.hpp"
#include "checker/state_space.hpp"
#include "core/builder.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/running_example.hpp"
#include "protocols/token_ring.hpp"

namespace nonmask {
namespace {

TEST(FalsifyTest, FindsTheRunningExampleLivelock) {
  const Design d = make_running_example(RunningExampleVariant::kWriteXBoth);
  const auto result = falsify_convergence(d);
  ASSERT_TRUE(result.violated);
  ASSERT_TRUE(result.cycle.has_value());
  // Certificate check: every cycle state violates S, and the cycle really
  // is traversable (each state has some action leading to the next).
  const auto S = d.S();
  const auto& cycle = *result.cycle;
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    EXPECT_FALSE(S(cycle[i]));
    const State& next = cycle[(i + 1) % cycle.size()];
    bool reachable = false;
    for (const auto& a : d.program.actions()) {
      if (a.enabled(cycle[i]) && a.apply(cycle[i]) == next) {
        reachable = true;
        break;
      }
    }
    EXPECT_TRUE(reachable) << "cycle step " << i;
  }
}

TEST(FalsifyTest, FindsLivelockAtHugeDomain) {
  // Domain far beyond any exhaustive budget: (2^20)^3 states. The livelock
  // pocket (y == z) has measure 2^-20 under uniform starts, so model the
  // fault scenario explicitly: corruption that lands y and z on the same
  // value — exactly how a falsifier is used against a designated fault
  // class.
  const Design d = make_running_example(RunningExampleVariant::kWriteXBoth, 0,
                                        (1 << 20));
  EXPECT_FALSE(fits_in_budget(d.program));
  FalsifyOptions opts;
  opts.walks = 50;
  opts.make_start = [](const Program& p, Rng& rng) {
    State s = p.random_state(rng);
    s.set(p.find_variable("z"), s.get(p.find_variable("y")));
    return s;
  };
  const auto result = falsify_convergence(d, opts);
  EXPECT_TRUE(result.violated);
  EXPECT_TRUE(result.cycle.has_value());
}

TEST(FalsifyTest, FindsDeadlocks) {
  ProgramBuilder b("stuck");
  const VarId x = b.var("x", 0, 1000);
  b.closure(
      "dec", [x](const State& s) { return s.get(x) > 1; },
      [x](State& s) { s.set(x, s.get(x) - 1); }, {x}, {x});
  Design d;
  d.program = b.build();
  d.S_override = [x](const State& s) { return s.get(x) == 0; };
  const auto result = falsify_convergence(d);
  ASSERT_TRUE(result.violated);
  ASSERT_TRUE(result.deadlock.has_value());
  EXPECT_EQ(result.deadlock->get(x), 1);
}

TEST(FalsifyTest, SilentOnConvergingDesigns) {
  // A falsifier must not produce false positives — run it against designs
  // the exhaustive checker has proven convergent.
  const auto dd = make_diffusing(RootedTree::balanced(31, 2), true);
  FalsifyOptions opts;
  opts.walks = 50;
  opts.max_walk_length = 5000;
  EXPECT_FALSE(falsify_convergence(dd.design, opts).violated);

  const auto tr = make_dijkstra_ring(32, 33);
  EXPECT_FALSE(falsify_convergence(tr.design, opts).violated);
}

TEST(FalsifyTest, AgreesWithExhaustiveCheckerOnSmallDesigns) {
  struct Case {
    Design design;
  };
  std::vector<Design> designs;
  designs.push_back(make_running_example(RunningExampleVariant::kWriteYZ));
  designs.push_back(make_running_example(RunningExampleVariant::kWriteXBoth));
  designs.push_back(make_running_example(RunningExampleVariant::kDecreaseX));
  for (const Design& d : designs) {
    StateSpace space(d.program);
    const auto exact = check_convergence(space, d.S(), d.T());
    const auto mc = falsify_convergence(d);
    if (mc.violated) {
      EXPECT_EQ(exact.verdict, ConvergenceVerdict::kViolated) << d.name;
    }
    if (exact.verdict == ConvergenceVerdict::kConverges) {
      EXPECT_FALSE(mc.violated) << d.name;
    }
  }
}

TEST(FalsifyTest, DeterministicGivenSeed) {
  const Design d = make_running_example(RunningExampleVariant::kWriteXBoth);
  const auto a = falsify_convergence(d);
  const auto b = falsify_convergence(d);
  ASSERT_EQ(a.violated, b.violated);
  ASSERT_EQ(a.cycle.has_value(), b.cycle.has_value());
  if (a.cycle && b.cycle) {
    EXPECT_EQ(a.cycle->size(), b.cycle->size());
  }
}

}  // namespace
}  // namespace nonmask
