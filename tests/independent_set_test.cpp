// Stabilizing maximal independent set.
#include <gtest/gtest.h>

#include "checker/closure_check.hpp"
#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "engine/simulator.hpp"
#include "protocols/independent_set.hpp"
#include "sched/daemons.hpp"

namespace nonmask {
namespace {

TEST(IndependentSetTest, StabilizesExhaustivelyOnSmallGraphs) {
  for (const auto& g :
       {UndirectedGraph::path(5), UndirectedGraph::cycle(5),
        UndirectedGraph::complete(4), UndirectedGraph::grid(2, 3)}) {
    const auto is = make_independent_set(g);
    StateSpace space(is.design.program);
    EXPECT_TRUE(check_closed(space, is.design.S()).closed);
    const auto report = check_convergence(space, is.design.S(), is.design.T());
    EXPECT_EQ(report.verdict, ConvergenceVerdict::kConverges)
        << g.size() << " nodes / " << g.num_edges() << " edges";
  }
}

TEST(IndependentSetTest, SStatesAreExactlyTerminalStates) {
  const auto g = UndirectedGraph::cycle(5);
  const auto is = make_independent_set(g);
  StateSpace space(is.design.program);
  const auto S = is.design.S();
  State s(is.design.program.num_variables());
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, s);
    EXPECT_EQ(S(s), !is.design.program.any_enabled(s))
        << is.design.program.format_state(s);
  }
}

TEST(IndependentSetTest, FixpointsAreMaximalIndependentSets) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = UndirectedGraph::random_connected(40, 60, rng);
    const auto is = make_independent_set(g);
    RandomDaemon d(trial);
    Rng start_rng(trial + 50);
    RunOptions opts;
    opts.max_steps = 200'000;
    const auto r = converge(is.design,
                            is.design.program.random_state(start_rng), d,
                            opts);
    ASSERT_TRUE(r.converged);
    EXPECT_TRUE(is.maximal_independent(g, r.final_state));
  }
}

TEST(IndependentSetTest, UnfairDaemonConverges) {
  const auto g = UndirectedGraph::grid(3, 4);
  const auto is = make_independent_set(g);
  FirstEnabledDaemon d;
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    RunOptions opts;
    opts.max_steps = 10'000;
    const auto r = converge(
        is.design, is.design.program.random_state(rng), d, opts);
    EXPECT_TRUE(r.converged);
  }
}

TEST(IndependentSetTest, HelperPredicates) {
  const auto g = UndirectedGraph::path(3);  // 0-1-2
  const auto is = make_independent_set(g);
  State s(3);
  s.set(is.in[0], 1);
  s.set(is.in[2], 1);
  EXPECT_TRUE(is.independent(g, s));
  EXPECT_TRUE(is.maximal_independent(g, s));
  s.set(is.in[1], 1);
  EXPECT_FALSE(is.independent(g, s));
  s.set(is.in[0], 0);
  s.set(is.in[2], 0);
  EXPECT_TRUE(is.independent(g, s));        // {1}
  EXPECT_TRUE(is.maximal_independent(g, s));
  s.set(is.in[1], 0);
  EXPECT_FALSE(is.maximal_independent(g, s));  // empty set not maximal
}

}  // namespace
}  // namespace nonmask
