// Extension protocol: stabilizing leader election on a unidirectional ring.
#include <gtest/gtest.h>

#include "cgraph/classify.hpp"
#include "cgraph/theorems.hpp"
#include "checker/closure_check.hpp"
#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "checker/variant.hpp"
#include "engine/simulator.hpp"
#include "protocols/leader_election.hpp"
#include "sched/daemons.hpp"

namespace nonmask {
namespace {

TEST(LeaderElectionTest, StabilizesExhaustively) {
  for (const int n : {2, 3, 4, 5}) {
    const auto le = make_leader_election(n);
    StateSpace space(le.design.program);
    EXPECT_TRUE(check_closed(space, le.design.S()).closed) << "n=" << n;
    const auto report = check_convergence(space, le.design.S(), le.design.T());
    EXPECT_EQ(report.verdict, ConvergenceVerdict::kConverges) << "n=" << n;
  }
}

TEST(LeaderElectionTest, UniqueFixpointElectsNodeZero) {
  const auto le = make_leader_election(4);
  StateSpace space(le.design.program);
  const auto S = le.design.S();
  State s(le.design.program.num_variables());
  std::uint64_t s_count = 0;
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, s);
    if (!S(s)) continue;
    ++s_count;
    for (const VarId l : le.ldr) EXPECT_EQ(s.get(l), 0);
  }
  EXPECT_EQ(s_count, 1u);  // the all-zeros state is the only fixpoint
}

TEST(LeaderElectionTest, ConstraintGraphIsChainWithRootSelfLoop) {
  const auto le = make_leader_election(5);
  const auto cg = infer_constraint_graph(le.design.program);
  ASSERT_TRUE(cg.ok);
  EXPECT_EQ(classify(cg.graph), GraphShape::kSelfLooping);
  EXPECT_EQ(cg.graph.graph.num_nodes(), 5);
  const int root = cg.graph.node_of(le.ldr[0]);
  ASSERT_EQ(cg.graph.graph.in_degree(root), 1);
  const auto& self_edge =
      cg.graph.graph.edge(cg.graph.graph.in_edges(root)[0]);
  EXPECT_EQ(self_edge.from, root);  // claim@0 reads/writes only ldr.0
}

TEST(LeaderElectionTest, WorstCaseDistanceIsLinear) {
  // The ripple fixes at most one node per step and must travel the ring.
  const auto le = make_leader_election(4);
  StateSpace space(le.design.program);
  const auto variant = compute_variant(space, le.design.S());
  ASSERT_TRUE(variant.has_value());
  EXPECT_GE(variant->max_value(), 4u);
  EXPECT_LE(variant->max_value(), 10u);
}

TEST(LeaderElectionTest, ConvergesAtScaleUnderAllDaemons) {
  const auto le = make_leader_election(200);
  Rng rng(71);
  const State start = le.design.program.random_state(rng);
  RunOptions opts;
  opts.max_steps = 1'000'000;

  RandomDaemon random(1);
  EXPECT_TRUE(converge(le.design, start, random, opts).converged);
  RoundRobinDaemon rr;
  EXPECT_TRUE(converge(le.design, start, rr, opts).converged);
  FirstEnabledDaemon first;
  EXPECT_TRUE(converge(le.design, start, first, opts).converged);
  AdversarialDaemon adv(le.design.invariant, 2);
  EXPECT_TRUE(converge(le.design, start, adv, opts).converged);
  SynchronousDaemon sync;
  EXPECT_TRUE(converge(le.design, start, sync, opts).converged);
}

}  // namespace
}  // namespace nonmask
