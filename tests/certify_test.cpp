// Certificate auditing: valid certificates verify; tampered ones are
// caught.
#include <gtest/gtest.h>

#include "cgraph/certify.hpp"
#include "checker/state_space.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/leader_election.hpp"
#include "protocols/running_example.hpp"

namespace nonmask {
namespace {

TEST(CertifyTest, ValidCertificatesAudit) {
  struct Case {
    Design design;
  };
  std::vector<Design> designs;
  designs.push_back(make_running_example(RunningExampleVariant::kWriteYZ));
  designs.push_back(make_running_example(RunningExampleVariant::kDecreaseX));
  designs.push_back(make_diffusing(RootedTree::balanced(4, 2), false).design);
  designs.push_back(make_leader_election(4).design);

  for (const Design& d : designs) {
    StateSpace space(d.program);
    ValidationOptions opts;
    opts.space = &space;
    const auto cg = infer_constraint_graph(d.program);
    ASSERT_TRUE(cg.ok);
    auto report = validate_theorem1(d, cg.graph, opts);
    if (!report.applies) report = validate_theorem2(d, cg.graph, opts);
    ASSERT_TRUE(report.applies) << d.name;
    const auto problems = audit_certificate(d, cg.graph, report, opts);
    EXPECT_TRUE(problems.empty())
        << d.name << ": " << (problems.empty() ? "" : problems.front());
  }
}

TEST(CertifyTest, TamperedRanksDetected) {
  const Design d = make_running_example(RunningExampleVariant::kWriteYZ);
  StateSpace space(d.program);
  ValidationOptions opts;
  opts.space = &space;
  const auto cg = infer_constraint_graph(d.program);
  auto report = validate_theorem1(d, cg.graph, opts);
  ASSERT_TRUE(report.applies);
  report.ranks[0] = 99;
  const auto problems = audit_certificate(d, cg.graph, report, opts);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("rank recurrence"), std::string::npos);
}

TEST(CertifyTest, TamperedOrderDetected) {
  const Design d = make_running_example(RunningExampleVariant::kDecreaseX);
  StateSpace space(d.program);
  ValidationOptions opts;
  opts.space = &space;
  const auto cg = infer_constraint_graph(d.program);
  auto report = validate_theorem2(d, cg.graph, opts);
  ASSERT_TRUE(report.applies);
  // Swap the certified order at node {x}: fix-neq before fix-leq is wrong
  // (fix-leq does not preserve x != y).
  const int node = cg.graph.node_of(d.program.find_variable("x"));
  auto& order = report.node_orders[static_cast<std::size_t>(node)];
  ASSERT_EQ(order.size(), 2u);
  std::swap(order[0], order[1]);
  const auto problems = audit_certificate(d, cg.graph, report, opts);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("does not preserve"), std::string::npos);
}

TEST(CertifyTest, ForeignActionInOrderDetected) {
  const Design d = make_running_example(RunningExampleVariant::kDecreaseX);
  StateSpace space(d.program);
  ValidationOptions opts;
  opts.space = &space;
  const auto cg = infer_constraint_graph(d.program);
  auto report = validate_theorem2(d, cg.graph, opts);
  ASSERT_TRUE(report.applies);
  const int node = cg.graph.node_of(d.program.find_variable("x"));
  report.node_orders[static_cast<std::size_t>(node)] = {0, 0};
  const auto problems = audit_certificate(d, cg.graph, report, opts);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("not a permutation"), std::string::npos);
}

TEST(CertifyTest, NonApplyingReportsAuditTrivially) {
  const Design d = make_running_example(RunningExampleVariant::kWriteXBoth);
  StateSpace space(d.program);
  ValidationOptions opts;
  opts.space = &space;
  const auto cg = infer_constraint_graph(d.program);
  const auto report = validate_theorem2(d, cg.graph, opts);
  ASSERT_FALSE(report.applies);
  EXPECT_TRUE(audit_certificate(d, cg.graph, report, opts).empty());
}

}  // namespace
}  // namespace nonmask
