// The atomic-action protocol: the library's nontrivial-fault-span showcase
// (S ⊊ T ⊊ true). T-tolerant for S, but NOT true-tolerant — making the
// paper's relative definition of tolerance concrete.
#include <gtest/gtest.h>

#include "cgraph/theorems.hpp"
#include "checker/closure_check.hpp"
#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "engine/simulator.hpp"
#include "faults/injector.hpp"
#include "protocols/atomic_action.hpp"
#include "sched/daemons.hpp"

namespace nonmask {
namespace {

TEST(AtomicActionTest, TolerantForSWithinT) {
  for (const int participants : {1, 2, 3}) {
    const auto aa = make_atomic_action(participants);
    StateSpace space(aa.design.program);
    const auto report = verify_tolerance(space, aa.design);
    EXPECT_TRUE(report.S_closed) << participants;
    EXPECT_TRUE(report.T_closed) << participants;
    EXPECT_EQ(report.convergence.verdict, ConvergenceVerdict::kConverges)
        << participants;
    EXPECT_TRUE(report.tolerant());
  }
}

TEST(AtomicActionTest, NotTrueTolerant) {
  // Start states with f.j = 2 (outside T) deadlock outside S.
  const auto aa = make_atomic_action(2);
  StateSpace space(aa.design.program);
  const auto report =
      check_convergence(space, aa.design.S(), true_predicate());
  EXPECT_EQ(report.verdict, ConvergenceVerdict::kViolated);
  EXPECT_TRUE(report.deadlock.has_value());
}

TEST(AtomicActionTest, SIsStrictlyInsideT) {
  const auto aa = make_atomic_action(2);
  StateSpace space(aa.design.program);
  const auto S = aa.design.S();
  const auto T = aa.design.T();
  State s(aa.design.program.num_variables());
  std::uint64_t s_count = 0, t_count = 0, all = space.size();
  for (std::uint64_t code = 0; code < all; ++code) {
    space.decode_into(code, s);
    const bool in_S = S(s);
    const bool in_T = T(s);
    if (in_S) {
      ++s_count;
      EXPECT_TRUE(in_T);  // S => T
    }
    if (in_T) ++t_count;
  }
  EXPECT_LT(s_count, t_count);
  EXPECT_LT(t_count, all);
}

TEST(AtomicActionTest, FaultActionsPreserveT) {
  // The fault-span must be closed under the tolerated fault class too
  // (Section 3: the fault-span is closed under program AND fault actions).
  const auto aa = make_atomic_action(3);
  StateSpace space(aa.design.program);
  const auto report =
      check_closed(space, aa.design.T(), aa.fault_actions);
  EXPECT_TRUE(report.closed);
}

TEST(AtomicActionTest, Theorem1ValidatesTheDesign) {
  const auto aa = make_atomic_action(3);
  StateSpace space(aa.design.program);
  ValidationOptions opts;
  opts.space = &space;
  const auto report = validate_design(aa.design, opts);
  EXPECT_TRUE(report.applies) << format_report(report);
  EXPECT_NE(report.theorem.find("Theorem 1"), std::string::npos);
  EXPECT_EQ(report.shape, GraphShape::kOutTree);  // star rooted at {d}
}

TEST(AtomicActionTest, RepairsAfterToleratedFaults) {
  const auto aa = make_atomic_action(4);
  // Generic domain corruption could produce the un-tolerated value 2, so
  // drive the run with the protocol's own flip fault actions.
  RandomDaemon d(19);
  Simulator sim(aa.design.program, d);
  Rng fault_rng(91);
  std::size_t flips = 0;
  RunOptions opts;
  opts.max_steps = 50'000;
  opts.perturb = [&](std::size_t step, State& s) {
    if (step % 100 == 0 && step > 0 && flips < 10) {
      const auto& fa = aa.design.program.action(
          aa.fault_actions[fault_rng.below(aa.fault_actions.size())]);
      fa.execute(s);
      ++flips;
    }
  };
  opts.stop_when = [S = aa.design.S(), &flips](const State& s) {
    return flips == 10 && S(s);
  };
  const auto r = sim.run(aa.design.program.initial_state(), opts);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(flips, 10u);
}

TEST(AtomicActionTest, WorkProceedsOnlyInS) {
  const auto aa = make_atomic_action(2);
  StateSpace space(aa.design.program);
  State s(aa.design.program.num_variables());
  const auto S = aa.design.S();
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, s);
    for (const auto& a : aa.design.program.actions()) {
      if (a.kind() == ActionKind::kClosure && a.enabled(s)) {
        EXPECT_TRUE(S(s)) << "closure enabled outside S at "
                          << aa.design.program.format_state(s);
      }
    }
  }
}

TEST(AtomicActionTest, ConstructorValidation) {
  EXPECT_THROW(make_atomic_action(0), std::invalid_argument);
  EXPECT_THROW(make_atomic_action(2, 1), std::invalid_argument);
}

}  // namespace
}  // namespace nonmask
