// Property tests for multi-word packed records: a protocol whose variables
// exceed 64 packed bits (graph coloring on a 33-cycle — 33 x 2 bits = 66)
// must round-trip through PackedLayout pack/unpack, StateSpace
// encode/decode, and OdometerCursor ripple decoding, intern into the
// sharded concurrent set, and run on the compact falsification paths.
// These spaces (3^33 ≈ 5.6e15 codes) are far beyond exhaustive checking,
// so coverage is randomized round-trips plus bounded compact-backend runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "checker/falsify.hpp"
#include "checker/state_space.hpp"
#include "core/program.hpp"
#include "graphlib/topology.hpp"
#include "protocols/coloring.hpp"
#include "store/concurrent_set.hpp"
#include "store/facade.hpp"
#include "store/odometer.hpp"
#include "store/packed.hpp"
#include "util/rng.hpp"

namespace nonmask {
namespace {

constexpr int kNodes = 33;  // 33 x 2 bits = 66 packed bits -> 2 words
constexpr std::uint64_t kBudget = 6'000'000'000'000'000ULL;  // > 3^33

ColoringDesign multiword_design() {
  return make_coloring(UndirectedGraph::cycle(kNodes));
}

std::uint64_t pow3(int e) {
  std::uint64_t r = 1;
  for (int i = 0; i < e; ++i) r *= 3;
  return r;
}

State random_state(const Program& p, Rng& rng) {
  State s(p.num_variables());
  for (std::size_t i = 0; i < p.num_variables(); ++i) {
    const VariableSpec& spec = p.variable(VarId(static_cast<std::uint32_t>(i)));
    s.values()[i] = static_cast<Value>(
        spec.lo + static_cast<Value>(rng() % spec.domain_size()));
  }
  return s;
}

TEST(StoreMultiwordTest, LayoutSpansTwoWordsWithoutStraddling) {
  const auto cd = multiword_design();
  const store::PackedLayout layout(cd.design.program);
  EXPECT_EQ(layout.total_bits(), 66u);
  EXPECT_EQ(layout.words(), 2u);
  for (std::size_t i = 0; i < cd.design.program.num_variables(); ++i) {
    EXPECT_EQ(layout.width(i), 2u);
  }
}

TEST(StoreMultiwordTest, PackUnpackRoundTripsRandomStates) {
  const auto cd = multiword_design();
  const Program& p = cd.design.program;
  const store::PackedLayout layout(p);
  std::vector<std::uint64_t> words(layout.words());
  State back(p.num_variables());
  Rng rng(0x66b175);
  for (int trial = 0; trial < 1000; ++trial) {
    const State s = random_state(p, rng);
    layout.pack(s, words.data());
    layout.unpack(words.data(), back);
    ASSERT_EQ(back, s);
  }
}

TEST(StoreMultiwordTest, EncodeDecodeRoundTripsBeyondU32Codes) {
  const auto cd = multiword_design();
  ASSERT_EQ(cd.design.program.state_count().value_or(0), pow3(kNodes));
  const StateSpace space(cd.design.program, kBudget);
  ASSERT_EQ(space.size(), pow3(kNodes));
  State s(cd.design.program.num_variables());
  Rng rng(0xdec0de);
  for (int trial = 0; trial < 1000; ++trial) {
    const std::uint64_t code = rng() % space.size();
    space.decode_into(code, s);
    EXPECT_EQ(space.encode(s), code);
  }
}

TEST(StoreMultiwordTest, OdometerMatchesDecodeAcrossWordBoundary) {
  const auto cd = multiword_design();
  const StateSpace space(cd.design.program, kBudget);
  State expect(cd.design.program.num_variables());
  Rng rng(0x0d03);
  for (int trial = 0; trial < 20; ++trial) {
    // Ranges crossing many ripple carries, including runs near the top.
    const std::uint64_t base =
        trial == 0 ? space.size() - 600 : rng() % (space.size() - 600);
    store::OdometerCursor cur(space, base);
    for (std::uint64_t off = 0; off < 500; ++off) {
      ASSERT_EQ(cur.code(), base + off);
      space.decode_into(base + off, expect);
      ASSERT_EQ(cur.state(), expect);
      cur.advance();
    }
  }
}

TEST(StoreMultiwordTest, ConcurrentSetInternsTwoWordRecords) {
  const auto cd = multiword_design();
  const Program& p = cd.design.program;
  const store::PackedLayout layout(p);
  store::ConcurrentPackedSet set(layout, /*shard_bits=*/4, /*seed=*/42);

  std::vector<std::uint64_t> words(layout.words());
  std::vector<State> states;
  std::vector<std::uint64_t> ids;
  Rng rng(0x5e7);
  for (int i = 0; i < 2000; ++i) {
    const State s = random_state(p, rng);
    layout.pack(s, words.data());
    const auto [id, fresh] = set.insert(words.data());
    if (fresh) {
      states.push_back(s);
      ids.push_back(id);
    }
  }
  ASSERT_GT(states.size(), 1900u);  // collisions in 3^33 are negligible
  EXPECT_EQ(set.size(), states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    layout.pack(states[i], words.data());
    const auto found = set.find(words.data());
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, ids[i]);
    EXPECT_TRUE(equal(layout, set.get(ids[i]), words.data()));
    const auto [id2, fresh2] = set.insert(words.data());
    EXPECT_FALSE(fresh2);
    EXPECT_EQ(id2, ids[i]);
  }
}

TEST(StoreMultiwordTest, CompactFalsificationPathsRunOnTwoWordRecords) {
  const auto cd = multiword_design();

  // Random-walk falsification interns every visited state as a two-word
  // packed record; the coloring protocol self-stabilizes, so no violation.
  FalsifyOptions fopts;
  fopts.walks = 5;
  fopts.max_walk_length = 300;
  const FalsifyResult walks = falsify_convergence(cd.design, fopts);
  EXPECT_FALSE(walks.violated);
  EXPECT_EQ(walks.walks_run, 5u);
  EXPECT_GT(walks.steps_taken, 0u);

  // Bounded DFS probe from a maximally conflicted start (all nodes share
  // one color) — dense sidecar ids over two-word records.
  State start(cd.design.program.num_variables());
  for (Value& v : start.values()) v = 0;
  ProbeOptions popts;
  popts.max_states = 512;
  const FalsifyResult probe = probe_violation_from(cd.design, start, popts);
  EXPECT_FALSE(probe.violated);
}

TEST(StoreMultiwordTest, FallbackReasonNamesOversizedSpaces) {
  store::StoreConfig cfg;
  cfg.backend = store::StoreBackend::kStore;
  // 3^33 codes exceed the u32 dense visit-id range of the compact Tarjan
  // bookkeeping; the facade must say so instead of silently going dense.
  const auto reason =
      store::backend_fallback_reason_for_size(cfg, pow3(kNodes));
  ASSERT_TRUE(reason.has_value());
  EXPECT_NE(reason->find("u32"), std::string::npos);
  EXPECT_FALSE(
      store::backend_fallback_reason_for_size(cfg, 1'000'000).has_value());
  cfg.backend = store::StoreBackend::kLegacyDense;
  EXPECT_FALSE(
      store::backend_fallback_reason_for_size(cfg, pow3(kNodes)).has_value());
}

}  // namespace
}  // namespace nonmask
