// E3/E4: the stabilizing diffusing computation (Section 5.1).
// Exhaustive self-stabilization on every small tree shape; simulated
// re-stabilization after corruption on larger trees; wave behavior in the
// fault-free steady state.
#include <gtest/gtest.h>

#include "checker/closure_check.hpp"
#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "engine/simulator.hpp"
#include "faults/fault.hpp"
#include "faults/injector.hpp"
#include "protocols/diffusing.hpp"
#include "sched/daemons.hpp"

namespace nonmask {
namespace {

struct TreeCase {
  const char* name;
  RootedTree tree;
};

std::vector<TreeCase> small_trees() {
  return {
      {"chain2", RootedTree::chain(2)},
      {"chain3", RootedTree::chain(3)},
      {"chain4", RootedTree::chain(4)},
      {"chain5", RootedTree::chain(5)},
      {"star4", RootedTree::star(4)},
      {"star5", RootedTree::star(5)},
      {"binary5", RootedTree::balanced(5, 2)},
      {"binary6", RootedTree::balanced(6, 2)},
      {"ternary5", RootedTree::balanced(5, 3)},
  };
}

class DiffusingExhaustiveTest : public ::testing::TestWithParam<bool> {};

// The headline claim: from EVERY state, computations converge to S —
// for both the combined (paper-final) and separated design forms.
TEST_P(DiffusingExhaustiveTest, SelfStabilizesOnAllSmallTrees) {
  const bool combined = GetParam();
  for (const auto& tc : small_trees()) {
    const auto dd = make_diffusing(tc.tree, combined);
    StateSpace space(dd.design.program);
    const auto report = check_convergence(space, dd.design.S(), dd.design.T());
    EXPECT_EQ(report.verdict, ConvergenceVerdict::kConverges)
        << tc.name << " combined=" << combined;
    EXPECT_EQ(report.states_in_T, space.size()) << tc.name;
  }
}

TEST_P(DiffusingExhaustiveTest, InvariantClosedOnAllSmallTrees) {
  const bool combined = GetParam();
  for (const auto& tc : small_trees()) {
    const auto dd = make_diffusing(tc.tree, combined);
    StateSpace space(dd.design.program);
    EXPECT_TRUE(check_closed(space, dd.design.S()).closed)
        << tc.name << " combined=" << combined;
  }
}

INSTANTIATE_TEST_SUITE_P(CombinedAndSeparated, DiffusingExhaustiveTest,
                         ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "combined" : "separated";
                         });

// No deadlock anywhere: some action is enabled at every state (the wave
// never halts).
TEST(DiffusingTest, AlwaysEnabled) {
  const auto tree = RootedTree::balanced(6, 2);
  const auto dd = make_diffusing(tree, true);
  StateSpace space(dd.design.program);
  State s(dd.design.program.num_variables());
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, s);
    EXPECT_TRUE(dd.design.program.any_enabled(s));
  }
}

TEST(DiffusingTest, WriteSetContractsHonored) {
  const auto tree = RootedTree::balanced(6, 2);
  const auto dd = make_diffusing(tree, true);
  StateSpace space(dd.design.program);
  State s(dd.design.program.num_variables());
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, s);
    EXPECT_EQ(dd.design.program.check_contracts(s), "");
  }
}

// Steady-state wave: from the all-green state, the root initiates, red
// propagates to the leaves, green reflects back, and the root initiates
// the next wave with the opposite session number.
TEST(DiffusingTest, WaveSweepsDownAndReflects) {
  const auto tree = RootedTree::chain(4);
  const auto dd = make_diffusing(tree, true);
  const Design& d = dd.design;
  RoundRobinDaemon daemon;
  Simulator sim(d.program, daemon);

  // All green, equal session numbers: an S state.
  State s = d.program.initial_state();
  ASSERT_TRUE(d.S()(s));

  RunOptions opts;
  opts.max_steps = 200;
  opts.record_snapshots = true;
  opts.stop_when = [](const State&) { return false; };
  const auto r = sim.run(s, opts);

  // S must hold at every step (closure), and every node must turn red and
  // back green at least once (the wave visits everyone).
  const auto S = d.S();
  std::vector<bool> was_red(4, false), was_green_again(4, false);
  for (const State& snap : r.trace.snapshots()) {
    EXPECT_TRUE(S(snap));
    for (int j = 0; j < 4; ++j) {
      const Value c = snap.get(dd.color[static_cast<std::size_t>(j)]);
      if (c == kRed) was_red[static_cast<std::size_t>(j)] = true;
      if (c == kGreen && was_red[static_cast<std::size_t>(j)]) {
        was_green_again[static_cast<std::size_t>(j)] = true;
      }
    }
  }
  for (int j = 0; j < 4; ++j) {
    EXPECT_TRUE(was_red[static_cast<std::size_t>(j)]) << "node " << j;
    EXPECT_TRUE(was_green_again[static_cast<std::size_t>(j)]) << "node " << j;
  }
}

// E3 at scale: random corruption of every node, simulated convergence.
TEST(DiffusingTest, RecoversFromFullCorruptionAtScale) {
  Rng tree_rng(13);
  for (const int n : {50, 200}) {
    const auto tree = RootedTree::random(n, tree_rng);
    const auto dd = make_diffusing(tree, true);
    RandomDaemon daemon(99);
    Rng rng(17);
    for (int trial = 0; trial < 5; ++trial) {
      State start = dd.design.program.random_state(rng);
      RunOptions opts;
      opts.max_steps = 200'000;
      const auto r = converge(dd.design, start, daemon, opts);
      EXPECT_TRUE(r.converged) << "n=" << n << " trial=" << trial;
    }
  }
}

// Nonmasking behavior under live faults: corruption mid-run is repaired.
TEST(DiffusingTest, RepairsAfterInjectedFaults) {
  const auto tree = RootedTree::balanced(15, 2);
  const auto dd = make_diffusing(tree, true);
  auto inj = FaultInjector::periodic(
      std::make_shared<CorruptKProcesses>(3), 50, 4, 21);
  RandomDaemon daemon(5);
  Simulator sim(dd.design.program, daemon);
  RunOptions opts;
  opts.max_steps = 100'000;
  opts.perturb = inj.hook(dd.design.program);
  // Run past the fault budget, then demand convergence.
  opts.stop_when = [S = dd.design.S(), &inj](const State& s) {
    return inj.faults_injected() == 4 && S(s);
  };
  const auto r = sim.run(dd.design.program.initial_state(), opts);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(inj.faults_injected(), 4u);
}

// The separated design's convergence actions have guard exactly ¬R.j.
TEST(DiffusingTest, SeparatedCorrectGuardsMatchConstraints) {
  const auto tree = RootedTree::balanced(5, 2);
  const auto dd = make_diffusing(tree, false);
  const Design& d = dd.design;
  StateSpace space(d.program);
  State s(d.program.num_variables());
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, s);
    for (const auto& a : d.program.actions()) {
      if (a.kind() != ActionKind::kConvergence) continue;
      const auto& c =
          d.invariant.at(static_cast<std::size_t>(a.constraint_id()));
      EXPECT_EQ(a.enabled(s), !c.holds(s));
    }
  }
}

// Worst-case convergence distance grows with tree height (E4 shape check):
// a deeper chain needs strictly more steps than a flat star of equal size.
TEST(DiffusingTest, ConvergenceDistanceTracksDepth) {
  const auto chain = make_diffusing(RootedTree::chain(5), true);
  const auto star = make_diffusing(RootedTree::star(5), true);
  StateSpace chain_space(chain.design.program);
  StateSpace star_space(star.design.program);
  const auto chain_report =
      check_convergence(chain_space, chain.design.S(), chain.design.T());
  const auto star_report =
      check_convergence(star_space, star.design.S(), star.design.T());
  ASSERT_EQ(chain_report.verdict, ConvergenceVerdict::kConverges);
  ASSERT_EQ(star_report.verdict, ConvergenceVerdict::kConverges);
  EXPECT_GT(chain_report.max_steps_to_S, star_report.max_steps_to_S);
}

}  // namespace
}  // namespace nonmask
