// Tests for program/design introspection.
#include <gtest/gtest.h>

#include "core/describe.hpp"
#include "protocols/atomic_action.hpp"
#include "protocols/running_example.hpp"

namespace nonmask {
namespace {

TEST(DescribeTest, ProgramListsVariablesAndActions) {
  const Design d = make_running_example(RunningExampleVariant::kWriteYZ);
  const std::string text = describe_program(d.program);
  EXPECT_NE(text.find("x : [-1, 7]"), std::string::npos);
  EXPECT_NE(text.find("y : [0, 7]"), std::string::npos);
  EXPECT_NE(text.find("[convergence] fix-neq"), std::string::npos);
  EXPECT_NE(text.find("writes {y}"), std::string::npos);
  EXPECT_NE(text.find("establishes #0"), std::string::npos);
  EXPECT_NE(text.find("state space: 576 states"), std::string::npos);
}

TEST(DescribeTest, DesignListsConstraintsAndST) {
  const Design d = make_running_example(RunningExampleVariant::kWriteYZ);
  const std::string text = describe_design(d);
  EXPECT_NE(text.find("#0 x != y"), std::string::npos);
  EXPECT_NE(text.find("#1 x <= z"), std::string::npos);
  EXPECT_NE(text.find("conjunction of constraints"), std::string::npos);
  EXPECT_NE(text.find("true (stabilizing)"), std::string::npos);
}

TEST(DescribeTest, NonStabilizingDesignMarked) {
  const auto aa = make_atomic_action(2);
  const std::string text = describe_design(aa.design);
  EXPECT_NE(text.find("T: restricted"), std::string::npos);
  EXPECT_NE(text.find("[fault] flip@0"), std::string::npos);
}

TEST(DescribeTest, ProcessAnnotations) {
  const auto aa = make_atomic_action(2);
  const std::string text = describe_program(aa.design.program);
  EXPECT_NE(text.find("f.0 : [0, 2] @p0"), std::string::npos);
  EXPECT_NE(text.find("[convergence] apply@1 @p1"), std::string::npos);
}

}  // namespace
}  // namespace nonmask
