// Cross-protocol domain-safety property test (the contract every checker
// and store codec silently relies on): no FaultModel::strike may ever drive
// a variable outside its declared [lo, hi] interval — the packed codecs
// would alias a corrupted value onto a *different* legal state and the
// exhaustive passes would silently explore the wrong region. Every model,
// including the persistent Byzantine actor under both policies, is hammered
// with seeded strikes against every shipped protocol.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "faults/byzantine.hpp"
#include "faults/fault.hpp"
#include "protocols/aggregation.hpp"
#include "protocols/atomic_action.hpp"
#include "protocols/coloring.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/distributed_reset.hpp"
#include "protocols/independent_set.hpp"
#include "protocols/leader_election.hpp"
#include "protocols/matching.hpp"
#include "protocols/running_example.hpp"
#include "protocols/spanning_tree.hpp"
#include "protocols/tmr.hpp"
#include "protocols/token_ring.hpp"
#include "protocols/token_ring_small.hpp"
#include "util/rng.hpp"

namespace nonmask {
namespace {

constexpr int kStrikesPerCombo = 1000;

std::vector<std::pair<std::string, Program>> all_protocols() {
  std::vector<std::pair<std::string, Program>> out;
  out.emplace_back("running-example",
                   make_running_example(RunningExampleVariant::kWriteYZ)
                       .program);
  out.emplace_back("diffusing",
                   make_diffusing(RootedTree::balanced(7, 2)).design.program);
  out.emplace_back("spanning-tree",
                   make_spanning_tree(UndirectedGraph::path(5)).design.program);
  out.emplace_back(
      "spanning-tree+env",
      make_spanning_tree_with_environment(UndirectedGraph::path(4))
          .design.program);
  out.emplace_back("coloring",
                   make_coloring(UndirectedGraph::cycle(5)).design.program);
  out.emplace_back("matching",
                   make_matching(UndirectedGraph::path(5)).design.program);
  out.emplace_back("leader-election",
                   make_leader_election(4).design.program);
  out.emplace_back("atomic-action", make_atomic_action(3).design.program);
  out.emplace_back(
      "distributed-reset",
      make_distributed_reset(RootedTree::balanced(5, 2)).design.program);
  out.emplace_back(
      "aggregation",
      make_aggregation(RootedTree::balanced(7, 2), 3).design.program);
  out.emplace_back(
      "independent-set",
      make_independent_set(UndirectedGraph::cycle(5)).design.program);
  out.emplace_back("tmr", make_tmr(false).design.program);
  out.emplace_back("token-ring-bounded",
                   make_token_ring_bounded(4, 7).design.program);
  out.emplace_back("dijkstra-ring", make_dijkstra_ring(4, 5).design.program);
  out.emplace_back("dijkstra-3-state",
                   make_dijkstra_three_state(4).design.program);
  out.emplace_back("dijkstra-4-state",
                   make_dijkstra_four_state(4).design.program);
  return out;
}

/// A process of `p` that owns at least one variable, or -1.
int variable_owning_process(const Program& p) {
  for (const auto& v : p.variables()) {
    if (v.process >= 0) return v.process;
  }
  return -1;
}

std::vector<std::pair<std::string, FaultModelPtr>> models_for(
    const Program& p) {
  std::vector<std::pair<std::string, FaultModelPtr>> out;
  out.emplace_back("corrupt-1-var", std::make_shared<CorruptKVariables>(1));
  out.emplace_back("corrupt-k-vars-clamped",
                   std::make_shared<CorruptKVariables>(1000, p));
  out.emplace_back("corrupt-1-proc", std::make_shared<CorruptKProcesses>(1));
  out.emplace_back("corrupt-k-procs-clamped",
                   std::make_shared<CorruptKProcesses>(1000, p));
  out.emplace_back("corrupt-fraction",
                   std::make_shared<CorruptFraction>(0.5));
  // Targeted corruption with a deliberately out-of-range value: the model
  // must clamp it into the domain.
  out.emplace_back("targeted-clamping",
                   std::make_shared<TargetedCorruption>(
                       std::vector<VarId>{VarId(0)},
                       std::vector<Value>{std::numeric_limits<Value>::max()}));
  const int byz = variable_owning_process(p);
  if (byz >= 0) {
    out.emplace_back("byzantine-random",
                     std::make_shared<ByzantineModel>(
                         p, std::vector<int>{byz},
                         ByzantineModel::Policy::kRandom));
    out.emplace_back("byzantine-extremes",
                     std::make_shared<ByzantineModel>(
                         p, std::vector<int>{byz},
                         ByzantineModel::Policy::kExtremes));
  }
  return out;
}

TEST(FaultDomainPropertyTest, EveryStrikeStaysInDomainOnEveryProtocol) {
  std::uint64_t combo_seed = 1;
  for (const auto& [proto_name, program] : all_protocols()) {
    for (const auto& [model_name, model] : models_for(program)) {
      Rng rng(combo_seed++);
      State s = program.initial_state();
      for (int strike = 0; strike < kStrikesPerCombo; ++strike) {
        model->strike(program, s, rng);
        if (!program.in_domain(s)) {
          FAIL() << model_name << " drove " << proto_name
                 << " out of domain on strike " << strike;
        }
      }
    }
  }
}

}  // namespace
}  // namespace nonmask
