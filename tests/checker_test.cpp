// Unit tests for the explicit-state checker: state spaces, closure checks,
// exact (unfair) and weakly-fair convergence checks, preserves obligations,
// and variant extraction.
#include <gtest/gtest.h>

#include "checker/closure_check.hpp"
#include "checker/convergence_check.hpp"
#include "checker/preserves.hpp"
#include "checker/state_space.hpp"
#include "checker/variant.hpp"
#include "core/builder.hpp"
#include "core/candidate.hpp"

namespace nonmask {
namespace {

TEST(StateSpaceTest, EncodeDecodeRoundtrip) {
  ProgramBuilder b("p");
  b.var("a", -1, 2);  // 4 values
  b.var("b", 0, 2);   // 3 values
  b.var("c", 5, 6);   // 2 values
  Program p = b.build();
  StateSpace space(p);
  EXPECT_EQ(space.size(), 24u);
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    const State s = space.decode(code);
    EXPECT_TRUE(p.in_domain(s));
    EXPECT_EQ(space.encode(s), code);
  }
}

TEST(StateSpaceTest, BudgetEnforced) {
  ProgramBuilder b("p");
  b.var("a", 0, 999);
  b.var("b", 0, 999);
  Program p = b.build();
  EXPECT_THROW(StateSpace(p, 1000), StateSpaceTooLarge);
  EXPECT_TRUE(fits_in_budget(p, 2'000'000));
  EXPECT_FALSE(fits_in_budget(p, 1000));
}

/// x counts down to 0; predicate x <= k is closed, x >= k is not.
Program countdown() {
  ProgramBuilder b("countdown");
  const VarId x = b.var("x", 0, 7);
  b.closure(
      "dec", [x](const State& s) { return s.get(x) > 0; },
      [x](State& s) { s.set(x, s.get(x) - 1); }, {x}, {x});
  return b.build();
}

TEST(ClosureTest, ClosedPredicatePasses) {
  Program p = countdown();
  StateSpace space(p);
  const VarId x = p.find_variable("x");
  const auto report =
      check_closed(space, [x](const State& s) { return s.get(x) <= 3; });
  EXPECT_TRUE(report.closed);
  EXPECT_GT(report.states_checked, 0u);
}

TEST(ClosureTest, OpenPredicateFailsWithCounterexample) {
  Program p = countdown();
  StateSpace space(p);
  const VarId x = p.find_variable("x");
  const auto report =
      check_closed(space, [x](const State& s) { return s.get(x) >= 3; });
  EXPECT_FALSE(report.closed);
  ASSERT_TRUE(report.violation.has_value());
  EXPECT_EQ(report.violation->state.get(x), 3);
  EXPECT_EQ(report.violation->successor.get(x), 2);
}

TEST(ClosureTest, RestrictedActionSubset) {
  ProgramBuilder b("two");
  const VarId x = b.var("x", 0, 3);
  b.closure(
      "dec", [x](const State& s) { return s.get(x) > 0; },
      [x](State& s) { s.set(x, s.get(x) - 1); }, {x}, {x});
  b.closure(
      "inc", [x](const State& s) { return s.get(x) < 3; },
      [x](State& s) { s.set(x, s.get(x) + 1); }, {x}, {x});
  Program p = b.build();
  StateSpace space(p);
  auto le1 = [x](const State& s) { return s.get(x) <= 1; };
  EXPECT_TRUE(check_closed(space, le1, {0}).closed);   // dec only
  EXPECT_FALSE(check_closed(space, le1, {1}).closed);  // inc breaks it
}

TEST(ConvergenceTest, CountdownConvergesWithExactWorstCase) {
  Program p = countdown();
  StateSpace space(p);
  const VarId x = p.find_variable("x");
  const auto report = check_convergence(
      space, [x](const State& s) { return s.get(x) == 0; }, true_predicate());
  EXPECT_EQ(report.verdict, ConvergenceVerdict::kConverges);
  EXPECT_EQ(report.max_steps_to_S, 7u);
  EXPECT_EQ(report.states_in_T, 8u);
  EXPECT_EQ(report.states_in_S, 1u);
}

/// Two actions that oscillate x between 0 and 1 forever.
Program oscillator() {
  ProgramBuilder b("oscillator");
  const VarId x = b.var("x", 0, 1);
  b.closure(
      "up", [x](const State& s) { return s.get(x) == 0; },
      [x](State& s) { s.set(x, 1); }, {x}, {x});
  b.closure(
      "down", [x](const State& s) { return s.get(x) == 1; },
      [x](State& s) { s.set(x, 0); }, {x}, {x});
  return b.build();
}

TEST(ConvergenceTest, OscillatorViolatesWithCycle) {
  Program p = oscillator();
  StateSpace space(p);
  const auto report =
      check_convergence(space, false_predicate(), true_predicate());
  EXPECT_EQ(report.verdict, ConvergenceVerdict::kViolated);
  ASSERT_TRUE(report.cycle.has_value());
  EXPECT_GE(report.cycle->size(), 2u);
}

TEST(ConvergenceTest, DeadlockOutsideSViolates) {
  ProgramBuilder b("stuck");
  const VarId x = b.var("x", 0, 2);
  // Only 2 -> 1; from 1 nothing is enabled, and S = (x == 0).
  b.closure(
      "step", [x](const State& s) { return s.get(x) == 2; },
      [x](State& s) { s.set(x, 1); }, {x}, {x});
  Program p = b.build();
  StateSpace space(p);
  const auto report = check_convergence(
      space, [x](const State& s) { return s.get(x) == 0; }, true_predicate());
  EXPECT_EQ(report.verdict, ConvergenceVerdict::kViolated);
  EXPECT_TRUE(report.deadlock.has_value());
}

TEST(ConvergenceTest, FaultSpanRestrictsStartStates) {
  ProgramBuilder b("gated");
  const VarId x = b.var("x", 0, 3);
  // 3 is a trap (no exit, not in S); T excludes it.
  b.closure(
      "dec",
      [x](const State& s) { return s.get(x) > 0 && s.get(x) < 3; },
      [x](State& s) { s.set(x, s.get(x) - 1); }, {x}, {x});
  Program p = b.build();
  StateSpace space(p);
  auto S = [x](const State& s) { return s.get(x) == 0; };
  auto T = [x](const State& s) { return s.get(x) <= 2; };
  EXPECT_EQ(check_convergence(space, S, T).verdict,
            ConvergenceVerdict::kConverges);
  EXPECT_EQ(check_convergence(space, S, true_predicate()).verdict,
            ConvergenceVerdict::kViolated);
}

/// Spin + escape: an unfair daemon can spin on `spin` forever, but the
/// always-enabled `exit` action leaves the loop — weakly fair computations
/// must converge.
Program spin_with_escape() {
  ProgramBuilder b("spin");
  const VarId x = b.var("x", 0, 1);  // 0 = spinning region, 1 = S
  const VarId y = b.var("y", 0, 1);  // toggled by the spin action
  b.closure(
      "spin", [x](const State& s) { return s.get(x) == 0; },
      [y](State& s) { s.set(y, 1 - s.get(y)); }, {x, y}, {y});
  b.closure(
      "exit", [x](const State& s) { return s.get(x) == 0; },
      [x](State& s) { s.set(x, 1); }, {x}, {x});
  return b.build();
}

TEST(ConvergenceTest, UnfairFailsButWeaklyFairConverges) {
  Program p = spin_with_escape();
  StateSpace space(p);
  const VarId x = p.find_variable("x");
  auto S = [x](const State& s) { return s.get(x) == 1; };
  EXPECT_EQ(check_convergence(space, S, true_predicate()).verdict,
            ConvergenceVerdict::kViolated);
  EXPECT_EQ(check_convergence_weakly_fair(space, S, true_predicate()).verdict,
            ConvergenceVerdict::kConverges);
}

TEST(ConvergenceTest, WeaklyFairDetectsClosedScc) {
  Program p = oscillator();
  StateSpace space(p);
  const auto report =
      check_convergence_weakly_fair(space, false_predicate(), true_predicate());
  EXPECT_EQ(report.verdict, ConvergenceVerdict::kViolated);
  EXPECT_TRUE(report.cycle.has_value());
}

TEST(ConvergenceTest, WeaklyFairDetectsDeadlock) {
  ProgramBuilder b("stuck");
  const VarId x = b.var("x", 0, 1);
  Program p = b.build();  // no actions at all
  StateSpace space(p);
  const auto report = check_convergence_weakly_fair(
      space, [x](const State& s) { return s.get(x) == 0; }, true_predicate());
  EXPECT_EQ(report.verdict, ConvergenceVerdict::kViolated);
  EXPECT_TRUE(report.deadlock.has_value());
}

TEST(PreservesTest, ExhaustivePassAndFail) {
  Program p = countdown();
  StateSpace space(p);
  const VarId x = p.find_variable("x");
  PreservesOptions opts;
  opts.space = &space;

  auto le3 = [x](const State& s) { return s.get(x) <= 3; };
  auto ge3 = [x](const State& s) { return s.get(x) >= 3; };
  const auto pass = check_preserves(p, p.action(0), le3, opts);
  EXPECT_TRUE(pass.preserves);
  EXPECT_TRUE(pass.exhaustive);
  const auto fail = check_preserves(p, p.action(0), ge3, opts);
  EXPECT_FALSE(fail.preserves);
  ASSERT_TRUE(fail.counterexample.has_value());
  EXPECT_EQ(fail.counterexample->get(x), 3);
}

TEST(PreservesTest, ContextHypothesisRestricts) {
  Program p = countdown();
  StateSpace space(p);
  const VarId x = p.find_variable("x");
  PreservesOptions opts;
  opts.space = &space;
  // "x >= 3" is preserved under the hypothesis x >= 5 (5 -> 4 >= 3).
  opts.context = [x](const State& s) { return s.get(x) >= 5; };
  const auto report = check_preserves(
      p, p.action(0), [x](const State& s) { return s.get(x) >= 3; }, opts);
  EXPECT_TRUE(report.preserves);
}

TEST(PreservesTest, SampledModeFindsEasyCounterexample) {
  Program p = countdown();
  const VarId x = p.find_variable("x");
  PreservesOptions opts;
  opts.samples = 5000;
  const auto report = check_preserves(
      p, p.action(0), [x](const State& s) { return s.get(x) >= 3; }, opts);
  EXPECT_FALSE(report.preserves);
  EXPECT_FALSE(report.exhaustive);
}

TEST(VariantTest, CountdownVariantIsDistance) {
  Program p = countdown();
  StateSpace space(p);
  const VarId x = p.find_variable("x");
  const auto variant =
      compute_variant(space, [x](const State& s) { return s.get(x) == 0; });
  ASSERT_TRUE(variant.has_value());
  EXPECT_EQ(variant->max_value(), 7u);
  State s(1);
  for (Value v = 0; v <= 7; ++v) {
    s.set(x, v);
    EXPECT_EQ((*variant)(s), static_cast<std::uint32_t>(v));
  }
}

TEST(VariantTest, NoVariantForOscillator) {
  Program p = oscillator();
  StateSpace space(p);
  EXPECT_FALSE(compute_variant(space, false_predicate()).has_value());
}

TEST(ToleranceTest, VerifyToleranceEndToEnd) {
  ProgramBuilder b("fixit");
  const VarId x = b.var("x", 0, 3);
  b.convergence(
      "fix", [x](const State& s) { return s.get(x) != 0; },
      [x](State& s) { s.set(x, s.get(x) - 1); }, {x}, {x}, 0);
  Design d;
  d.program = b.build();
  d.invariant.add(
      Constraint{"x==0", [x](const State& s) { return s.get(x) == 0; }, {x}});
  d.fault_span = true_predicate();
  StateSpace space(d.program);
  const auto report = verify_tolerance(space, d);
  EXPECT_TRUE(report.S_closed);
  EXPECT_TRUE(report.T_closed);
  EXPECT_EQ(report.convergence.verdict, ConvergenceVerdict::kConverges);
  EXPECT_TRUE(report.tolerant());
}

}  // namespace
}  // namespace nonmask
