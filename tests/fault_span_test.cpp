// Unit tests for fault-span computation (Section 3: T as the reachable
// closure of S under program + fault actions).
#include <gtest/gtest.h>

#include "checker/closure_check.hpp"
#include "checker/convergence_check.hpp"
#include "checker/fault_span.hpp"
#include "checker/state_space.hpp"
#include "core/builder.hpp"
#include "protocols/atomic_action.hpp"

namespace nonmask {
namespace {

TEST(StateSetTest, InsertContainsPredicate) {
  ProgramBuilder b("p");
  b.var("x", 0, 3);
  Program p = b.build();
  StateSpace space(p);
  StateSet set(space);
  EXPECT_EQ(set.size(), 0u);
  set.insert_code(2);
  set.insert_code(2);  // idempotent
  EXPECT_EQ(set.size(), 1u);
  State s(1);
  s.set(VarId(0), 2);
  EXPECT_TRUE(set.contains(s));
  const auto pred = set.as_predicate();
  EXPECT_TRUE(pred(s));
  s.set(VarId(0), 1);
  EXPECT_FALSE(pred(s));
}

TEST(ReachableTest, ClosureUnderActions) {
  // dec-only countdown: reachable from {x = 5} is {0..5}.
  ProgramBuilder b("countdown");
  const VarId x = b.var("x", 0, 9);
  b.closure(
      "dec", [x](const State& s) { return s.get(x) > 0; },
      [x](State& s) { s.set(x, s.get(x) - 1); }, {x}, {x});
  Program p = b.build();
  StateSpace space(p);
  const auto set = compute_reachable(
      space, [x](const State& s) { return s.get(x) == 5; }, {0});
  EXPECT_EQ(set.size(), 6u);
  State s(1);
  for (Value v = 0; v <= 9; ++v) {
    s.set(x, v);
    EXPECT_EQ(set.contains(s), v <= 5) << v;
  }
}

TEST(ReachableTest, MaxStatesCapStopsExpansion) {
  ProgramBuilder b("inc");
  const VarId x = b.var("x", 0, 99);
  b.closure(
      "inc", [x](const State& s) { return s.get(x) < 99; },
      [x](State& s) { s.set(x, s.get(x) + 1); }, {x}, {x});
  Program p = b.build();
  StateSpace space(p);
  FaultSpanOptions opts;
  opts.max_states = 10;
  const auto set = compute_reachable(
      space, [x](const State& s) { return s.get(x) == 0; }, {0}, opts);
  EXPECT_LE(set.size(), 11u);  // cap checked after each expansion wave
}

TEST(FaultSpanTest, AtomicActionInducedSpanEqualsDeclaredT) {
  // The designed T is (forall j :: f.j != 2); the tolerated flip faults
  // never produce 2, so the induced span must match the declared T exactly.
  const auto aa = make_atomic_action(2);
  StateSpace space(aa.design.program);
  const auto span =
      compute_fault_span(space, aa.design.S(), aa.fault_actions);

  const auto T = aa.design.T();
  State s(aa.design.program.num_variables());
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, s);
    EXPECT_EQ(span.contains_code(code), T(s))
        << aa.design.program.format_state(s);
  }
}

TEST(FaultSpanTest, InducedSpanIsClosed) {
  const auto aa = make_atomic_action(3);
  StateSpace space(aa.design.program);
  const auto span =
      compute_fault_span(space, aa.design.S(), aa.fault_actions);
  const auto pred = span.as_predicate();
  // Closed under program actions...
  EXPECT_TRUE(check_closed(space, pred).closed);
  // ...and under the fault class itself.
  EXPECT_TRUE(check_closed(space, pred, aa.fault_actions).closed);
}

TEST(FaultSpanTest, VerifyAgainstFaultClassEndToEnd) {
  const auto aa = make_atomic_action(2);
  StateSpace space(aa.design.program);
  const auto report =
      verify_against_fault_class(space, aa.design, aa.fault_actions);
  EXPECT_TRUE(report.span_within_declared_T);
  EXPECT_TRUE(report.converges_from_span);
  EXPECT_TRUE(report.tolerant());
  EXPECT_GT(report.induced_span_size, 0u);

  // Add an un-tolerated poison fault: the span escapes T and convergence
  // from it fails.
  auto broken = make_atomic_action(2);
  const VarId f0 = broken.flags[0];
  broken.design.program.add_action(Action(
      "poison", ActionKind::kFault, true_predicate(),
      [f0](State& s) { s.set(f0, 2); }, {f0}, {f0}, 0));
  StateSpace space2(broken.design.program);
  const auto bad = verify_against_fault_class(
      space2, broken.design,
      {broken.design.program.num_actions() - 1});
  EXPECT_FALSE(bad.span_within_declared_T);
  EXPECT_FALSE(bad.converges_from_span);
  EXPECT_FALSE(bad.tolerant());
}

TEST(FaultSpanTest, GuardlessFaultsWidenTheSpan) {
  // A fault guarded to fire only at x == 0; respecting guards keeps the
  // span small, ignoring them reaches everything.
  ProgramBuilder b("guarded");
  const VarId x = b.var("x", 0, 3);
  b.fault(
      "bump", [x](const State& s) { return s.get(x) == 0; },
      [x](State& s) { s.set(x, (s.get(x) + 1) % 4); }, {x}, {x});
  Program p = b.build();
  StateSpace space(p);

  auto S = [x](const State& s) { return s.get(x) == 0; };
  const auto respected = compute_fault_span(space, S, {0});
  EXPECT_EQ(respected.size(), 2u);  // {0, 1}

  FaultSpanOptions opts;
  opts.respect_fault_guards = false;
  const auto ignored = compute_fault_span(space, S, {0}, opts);
  EXPECT_EQ(ignored.size(), 4u);  // wraps all the way around
}

}  // namespace
}  // namespace nonmask
