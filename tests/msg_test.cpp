// E10 + the low-atomicity refinement: message-passing token ring and
// low-atomicity diffusing computation.
#include <gtest/gtest.h>

#include <memory>

#include "checker/closure_check.hpp"
#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "engine/simulator.hpp"
#include "msg/mp_diffusing.hpp"
#include "msg/mp_token_ring.hpp"
#include "sched/daemons.hpp"

namespace nonmask {
namespace {

TEST(ChannelTest, DeclareAndFaults) {
  ProgramBuilder b("ch");
  const Channel ch = Channel::declare(b, "ch", 3);
  ch.add_loss_fault(b, "lose");
  ch.add_corruption_fault(b, "garble");
  Program p = b.build();
  EXPECT_EQ(p.variable(ch.slot).lo, Channel::kEmpty);
  EXPECT_EQ(p.variable(ch.slot).hi, 3);

  State s = p.initial_state();
  s.set(ch.slot, 2);
  EXPECT_FALSE(ch.empty(s));
  EXPECT_EQ(ch.payload(s), 2);
  p.action(0).execute(s);  // loss
  EXPECT_TRUE(ch.empty(s));
  EXPECT_FALSE(p.action(0).enabled(s));  // nothing left to drop
  s.set(ch.slot, 3);
  p.action(1).execute(s);  // corruption wraps 3 -> 0
  EXPECT_EQ(ch.payload(s), 0);
}

TEST(MpTokenRingTest, SIsClosedExhaustively) {
  const auto mp = make_mp_token_ring(2, 3);
  StateSpace space(mp.design.program);
  EXPECT_TRUE(check_closed(space, mp.design.S()).closed);
}

TEST(MpTokenRingTest, UnfairDaemonCanSpinForever) {
  // A send/consume pair with matching values loops without progress: the
  // refinement genuinely requires fairness (contrast with the paper's
  // Section 8 remark for the shared-memory designs).
  const auto mp = make_mp_token_ring(2, 3);
  StateSpace space(mp.design.program);
  const auto report = check_convergence(space, mp.design.S(), mp.design.T());
  EXPECT_EQ(report.verdict, ConvergenceVerdict::kViolated);
  EXPECT_TRUE(report.cycle.has_value());
}

TEST(MpTokenRingTest, WeakFairnessRestoresConvergence) {
  // The SCC escape analysis proves it: every spin component has an
  // always-enabled action whose firing leaves the component.
  const auto mp = make_mp_token_ring(2, 3);
  StateSpace space(mp.design.program);
  const auto report =
      check_convergence_weakly_fair(space, mp.design.S(), mp.design.T());
  EXPECT_EQ(report.verdict, ConvergenceVerdict::kConverges);
}

TEST(MpTokenRingTest, ConvergesUnderFairSimulation) {
  for (const int n : {2, 3, 5}) {
    const auto mp = make_mp_token_ring(n, 2 * n + 1);
    RoundRobinDaemon d;
    Rng rng(101 + static_cast<std::uint64_t>(n));
    for (int trial = 0; trial < 10; ++trial) {
      RunOptions opts;
      opts.max_steps = 100'000;
      const auto r = converge(
          mp.design, mp.design.program.random_state(rng), d, opts);
      EXPECT_TRUE(r.converged) << "n=" << n << " trial=" << trial;
    }
  }
}

TEST(MpTokenRingTest, CirculatesPerpetuallyInS) {
  const auto mp = make_mp_token_ring(4, 9);
  RoundRobinDaemon d;
  Simulator sim(mp.design.program, d);
  State s = mp.design.program.initial_state();  // all x=0, channels empty
  ASSERT_TRUE(mp.design.S()(s));
  RunOptions opts;
  opts.max_steps = 2000;
  opts.record_snapshots = true;
  opts.stop_when = [](const State&) { return false; };
  const auto r = sim.run(s, opts);
  int x0_changes = 0;
  Value last = 0;
  for (const State& snap : r.trace.snapshots()) {
    EXPECT_TRUE(mp.design.S()(snap));
    if (snap.get(mp.x[0]) != last) {
      last = snap.get(mp.x[0]);
      ++x0_changes;
    }
  }
  EXPECT_GT(x0_changes, 3);  // the token came around several times
}

TEST(MpTokenRingTest, RecoversFromMessageLossAndCorruption) {
  const auto mp = make_mp_token_ring(4, 9);
  RandomDaemon d(7);
  Simulator sim(mp.design.program, d);
  Rng fault_rng(131);
  std::size_t strikes = 0;
  RunOptions opts;
  opts.max_steps = 200'000;
  opts.perturb = [&](std::size_t step, State& s) {
    if (step % 200 == 0 && step > 0 && strikes < 12) {
      // Alternate loss and corruption on a random channel.
      const auto& pool =
          (strikes % 2 == 0) ? mp.loss_faults : mp.corruption_faults;
      const auto& fa =
          mp.design.program.action(pool[fault_rng.below(pool.size())]);
      if (fa.enabled(s)) fa.execute(s);
      ++strikes;
    }
  };
  opts.stop_when = [S = mp.design.S(), &strikes](const State& s) {
    return strikes == 12 && S(s);
  };
  const auto r = sim.run(mp.design.program.initial_state(), opts);
  EXPECT_TRUE(r.converged);
}

TEST(MpDiffusingTest, StabilizesExhaustivelyOnSmallTrees) {
  for (const auto& tree :
       {RootedTree::chain(2), RootedTree::chain(3), RootedTree::star(3)}) {
    const auto md = make_mp_diffusing(tree);
    StateSpace space(md.design.program);
    EXPECT_TRUE(check_closed(space, md.design.S()).closed)
        << tree.size() << " nodes";
    const auto report = check_convergence(space, md.design.S(), md.design.T());
    EXPECT_EQ(report.verdict, ConvergenceVerdict::kConverges)
        << tree.size() << " nodes, height " << tree.height();
  }
}

TEST(MpDiffusingTest, LowAtomicityActionsReadAtMostOneNeighbor) {
  const auto tree = RootedTree::balanced(7, 2);
  const auto md = make_mp_diffusing(tree);
  const Program& p = md.design.program;
  for (const auto& a : p.actions()) {
    // Count distinct processes among read variables other than the
    // action's own process.
    std::set<int> others;
    for (const VarId v : a.reads()) {
      const int proc = p.variable(v).process;
      if (proc != a.process()) others.insert(proc);
    }
    EXPECT_LE(others.size(), 1u) << a.name();
  }
}

TEST(MpDiffusingTest, WavesStillSweepTheTree) {
  const auto tree = RootedTree::balanced(7, 2);
  const auto md = make_mp_diffusing(tree);
  RoundRobinDaemon d;
  Simulator sim(md.design.program, d);
  State s = md.design.program.initial_state();
  RunOptions opts;
  opts.max_steps = 2000;
  opts.record_snapshots = true;
  opts.stop_when = [](const State&) { return false; };
  const auto r = sim.run(s, opts);
  std::vector<bool> was_red(7, false);
  for (const State& snap : r.trace.snapshots()) {
    for (int j = 0; j < 7; ++j) {
      if (snap.get(md.color[static_cast<std::size_t>(j)]) == kRed) {
        was_red[static_cast<std::size_t>(j)] = true;
      }
    }
  }
  for (int j = 0; j < 7; ++j) {
    EXPECT_TRUE(was_red[static_cast<std::size_t>(j)]) << "node " << j;
  }
}

TEST(MpDiffusingTest, RecoversFromCorruptionAtModerateScale) {
  Rng tree_rng(3);
  const auto tree = RootedTree::random(25, tree_rng);
  const auto md = make_mp_diffusing(tree);
  RandomDaemon d(11);
  Rng rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    RunOptions opts;
    opts.max_steps = 300'000;
    const auto r = converge(
        md.design, md.design.program.random_state(rng), d, opts);
    EXPECT_TRUE(r.converged) << "trial " << trial;
  }
}

}  // namespace
}  // namespace nonmask
