// Unit tests for fault models and injectors.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <set>

#include "core/builder.hpp"
#include "engine/simulator.hpp"
#include "faults/byzantine.hpp"
#include "faults/fault.hpp"
#include "faults/injector.hpp"
#include "sched/daemons.hpp"

namespace nonmask {
namespace {

Program five_process_program() {
  ProgramBuilder b("five");
  for (int j = 0; j < 5; ++j) {
    b.var("a." + std::to_string(j), 0, 9, j);
    b.var("b." + std::to_string(j), 0, 9, j);
  }
  return b.build();
}

int changed_count(const State& before, const State& after) {
  int n = 0;
  for (std::uint32_t i = 0; i < before.size(); ++i) {
    if (before.get(VarId(i)) != after.get(VarId(i))) ++n;
  }
  return n;
}

TEST(FaultModelTest, CorruptKVariablesStaysInDomainAndBounded) {
  Program p = five_process_program();
  Rng rng(1);
  CorruptKVariables model(3);
  for (int trial = 0; trial < 50; ++trial) {
    State s = p.initial_state();
    const State before = s;
    model.strike(p, s, rng);
    EXPECT_TRUE(p.in_domain(s));
    EXPECT_LE(changed_count(before, s), 3);
  }
}

TEST(FaultModelTest, CorruptKVariablesCapsAtVariableCount) {
  Program p = five_process_program();
  Rng rng(2);
  CorruptKVariables model(100);
  State s = p.initial_state();
  model.strike(p, s, rng);  // must terminate despite k > |vars|
  EXPECT_TRUE(p.in_domain(s));
}

TEST(FaultModelTest, CorruptKProcessesTouchesOnlyVictims) {
  Program p = five_process_program();
  Rng rng(3);
  CorruptKProcesses model(2);
  for (int trial = 0; trial < 30; ++trial) {
    State s = p.initial_state();
    const State before = s;
    model.strike(p, s, rng);
    // Changed variables must span at most 2 processes.
    std::set<int> touched;
    for (std::uint32_t i = 0; i < s.size(); ++i) {
      if (s.get(VarId(i)) != before.get(VarId(i))) {
        touched.insert(p.variable(VarId(i)).process);
      }
    }
    EXPECT_LE(touched.size(), 2u);
  }
}

TEST(FaultModelTest, CorruptCtorsRejectZeroBudget) {
  Program p = five_process_program();
  EXPECT_THROW(CorruptKVariables(0), std::invalid_argument);
  EXPECT_THROW(CorruptKProcesses(0), std::invalid_argument);
  EXPECT_THROW(CorruptKVariables(0, p), std::invalid_argument);
  EXPECT_THROW(CorruptKProcesses(0, p), std::invalid_argument);
}

TEST(FaultModelTest, ClampingCtorsStayInDomain) {
  Program p = five_process_program();
  Rng rng(6);
  CorruptKVariables vars(1000, p);   // clamped to |vars| at construction
  CorruptKProcesses procs(1000, p);  // clamped to the process count
  State s = p.initial_state();
  vars.strike(p, s, rng);
  EXPECT_TRUE(p.in_domain(s));
  procs.strike(p, s, rng);
  EXPECT_TRUE(p.in_domain(s));
}

TEST(ByzantineModelTest, ValidatesPlacement) {
  Program p = five_process_program();
  EXPECT_THROW(ByzantineModel(p, std::vector<int>{}), std::invalid_argument);
  EXPECT_THROW(ByzantineModel(p, std::vector<int>{1, 1}),
               std::invalid_argument);
  EXPECT_THROW(ByzantineModel(p, std::vector<int>{99}),
               std::invalid_argument);
}

TEST(ByzantineModelTest, StrikesOnlyOwnedVariablesInDomain) {
  Program p = five_process_program();
  Rng rng(7);
  ByzantineModel model(p, std::vector<int>{2},
                       ByzantineModel::Policy::kExtremes);
  EXPECT_EQ(model.variables().size(), 2u);  // a.2 and b.2
  for (int trial = 0; trial < 100; ++trial) {
    State s = p.initial_state();
    const State before = s;
    model.strike(p, s, rng);
    EXPECT_TRUE(p.in_domain(s));
    for (std::uint32_t i = 0; i < s.size(); ++i) {
      if (p.variable(VarId(i)).process != 2) {
        EXPECT_EQ(s.get(VarId(i)), before.get(VarId(i)));
      } else {
        // The extremes policy writes a domain endpoint.
        EXPECT_TRUE(s.get(VarId(i)) == 0 || s.get(VarId(i)) == 9);
      }
    }
  }
}

TEST(FaultModelTest, CorruptFractionExtremes) {
  Program p = five_process_program();
  Rng rng(4);
  State s = p.initial_state();
  CorruptFraction none(0.0);
  const State before = s;
  none.strike(p, s, rng);
  EXPECT_EQ(s, before);
  // p=1.0 redraws every variable (values may coincide, but stay in domain).
  CorruptFraction all(1.0);
  all.strike(p, s, rng);
  EXPECT_TRUE(p.in_domain(s));
}

TEST(FaultModelTest, TargetedCorruptionSetsAndClamps) {
  Program p = five_process_program();
  Rng rng(5);
  TargetedCorruption model({VarId(0), VarId(3)}, {7, 99});
  State s = p.initial_state();
  model.strike(p, s, rng);
  EXPECT_EQ(s.get(VarId(0)), 7);
  EXPECT_EQ(s.get(VarId(3)), 9);  // clamped to domain hi
}

TEST(FaultModelTest, TargetedSizeMismatchThrows) {
  EXPECT_THROW(TargetedCorruption({VarId(0)}, {1, 2}), std::invalid_argument);
}

TEST(InjectorTest, OneShotStrikesExactlyOnce) {
  Program p = five_process_program();
  auto inj = FaultInjector::one_shot(
      std::make_shared<CorruptKVariables>(2), 3, 7);
  State s = p.initial_state();
  for (std::size_t step = 0; step < 10; ++step) inj(step, p, s);
  EXPECT_EQ(inj.faults_injected(), 1u);
}

TEST(InjectorTest, PeriodicHonorsPeriodAndCap) {
  Program p = five_process_program();
  auto inj = FaultInjector::periodic(
      std::make_shared<CorruptKVariables>(1), 5, 3, 7);
  State s = p.initial_state();
  for (std::size_t step = 0; step < 100; ++step) inj(step, p, s);
  EXPECT_EQ(inj.faults_injected(), 3u);  // capped despite 19 period marks
}

TEST(InjectorTest, BernoulliRespectsCapAndResets) {
  Program p = five_process_program();
  auto inj = FaultInjector::bernoulli(
      std::make_shared<CorruptKVariables>(1), 0.5, 10, 9);
  State s = p.initial_state();
  for (std::size_t step = 0; step < 200; ++step) inj(step, p, s);
  EXPECT_EQ(inj.faults_injected(), 10u);
  inj.reset();
  EXPECT_EQ(inj.faults_injected(), 0u);
}

TEST(InjectorTest, HookDrivesSimulation) {
  // A self-fixing program with periodic corruption still converges once
  // the injector's budget runs out.
  ProgramBuilder b("fixit");
  const VarId x = b.var("x", 0, 3);
  const VarId tick = b.boolean("tick");
  b.convergence(
      "fix", [x](const State& s) { return s.get(x) != 0; },
      [x](State& s) { s.set(x, 0); }, {x}, {x}, 0);
  // Always-enabled background work so the run never deadlocks.
  b.closure(
      "tick", true_predicate(),
      [tick](State& s) { s.set(tick, 1 - s.get(tick)); }, {tick}, {tick});
  Program p = b.build();
  auto inj = FaultInjector::periodic(
      std::make_shared<TargetedCorruption>(
          std::vector<VarId>{x}, std::vector<Value>{3}),
      2, 5, 1);
  FirstEnabledDaemon d;  // prefers "fix" (lower index) whenever enabled
  Simulator sim(p, d);
  RunOptions opts;
  opts.perturb = inj.hook(p);
  opts.max_steps = 100;
  opts.stop_when = [](const State&) { return false; };
  const auto r = sim.run(p.initial_state(), opts);
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.final_state.get(x), 0);  // last fault long since repaired
  EXPECT_EQ(inj.faults_injected(), 5u);
}

TEST(InjectorTest, PersistentStrikesEveryStep) {
  Program p = five_process_program();
  auto inj = FaultInjector::persistent(
      std::make_shared<ByzantineModel>(p, std::vector<int>{0}), 11);
  State s = p.initial_state();
  for (std::size_t step = 0; step < 25; ++step) inj(step, p, s);
  EXPECT_EQ(inj.faults_injected(), 25u);
}

TEST(InjectorTest, BernoulliValidatesProbability) {
  const auto model = std::make_shared<CorruptKVariables>(1);
  EXPECT_THROW(FaultInjector::bernoulli(model, -0.1, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(FaultInjector::bernoulli(model, 1.5, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(FaultInjector::bernoulli(
                   model, std::numeric_limits<double>::quiet_NaN(), 10, 1),
               std::invalid_argument);
  EXPECT_NO_THROW(FaultInjector::bernoulli(model, 0.0, 10, 1));
  EXPECT_NO_THROW(FaultInjector::bernoulli(model, 1.0, 10, 1));
}

TEST(InjectorTest, OwningHookKeepsInjectorAlive) {
  Program p = five_process_program();
  const VarId a0 = p.find_variable("a.0");
  auto inj = std::make_shared<FaultInjector>(FaultInjector::one_shot(
      std::make_shared<TargetedCorruption>(std::vector<VarId>{a0},
                                           std::vector<Value>{9}),
      0, 1));
  auto hook = FaultInjector::hook(inj, p);
  const std::weak_ptr<FaultInjector> watch = inj;
  inj.reset();  // the hook holds the only remaining reference
  EXPECT_FALSE(watch.expired());
  State s = p.initial_state();
  hook(0, s);
  EXPECT_EQ(s.get(a0), 9);
  hook = nullptr;
  EXPECT_TRUE(watch.expired());
}

}  // namespace
}  // namespace nonmask
