// Extension protocol: Hsu-Huang stabilizing maximal matching.
#include <gtest/gtest.h>

#include "checker/closure_check.hpp"
#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "engine/simulator.hpp"
#include "protocols/matching.hpp"
#include "sched/daemons.hpp"

namespace nonmask {
namespace {

TEST(MatchingTest, StabilizesExhaustivelyOnSmallGraphs) {
  for (const auto& g :
       {UndirectedGraph::path(3), UndirectedGraph::path(4),
        UndirectedGraph::cycle(4), UndirectedGraph::complete(3),
        UndirectedGraph::complete(4)}) {
    const auto md = make_matching(g);
    StateSpace space(md.design.program);
    EXPECT_TRUE(check_closed(space, md.design.S()).closed)
        << g.size() << " nodes / " << g.num_edges() << " edges";
    const auto report = check_convergence(space, md.design.S(), md.design.T());
    EXPECT_EQ(report.verdict, ConvergenceVerdict::kConverges)
        << g.size() << " nodes / " << g.num_edges() << " edges";
  }
}

TEST(MatchingTest, SStatesAreExactlyMaximalMatchings) {
  const auto g = UndirectedGraph::path(4);
  const auto md = make_matching(g);
  StateSpace space(md.design.program);
  const auto S = md.design.S();
  State s(md.design.program.num_variables());
  std::uint64_t count = 0;
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, s);
    if (S(s)) {
      ++count;
      EXPECT_TRUE(md.is_maximal_matching(g, s));
      // Maximal matchings of P4 never leave both middle nodes unmatched.
      EXPECT_FALSE(s.get(md.ptr[1]) < 0 && s.get(md.ptr[2]) < 0);
    }
  }
  // P4 has exactly 2 maximal matchings as edge sets: {01,23} and {12}.
  EXPECT_EQ(count, 2u);
}

TEST(MatchingTest, SIsDeadlockState) {
  // In a maximal matching nothing is enabled: the protocol is silent.
  const auto g = UndirectedGraph::cycle(5);
  const auto md = make_matching(g);
  RandomDaemon d(3);
  Rng rng(77);
  RunOptions opts;
  opts.max_steps = 100'000;
  const auto r = converge(md.design,
                          md.design.program.random_state(rng), d, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_FALSE(md.design.program.any_enabled(r.final_state));
}

TEST(MatchingTest, ConvergesOnLargeRandomGraphs) {
  Rng rng(59);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = UndirectedGraph::random_connected(60, 80, rng);
    const auto md = make_matching(g);
    RandomDaemon d(trial);
    Rng start_rng(trial + 31);
    RunOptions opts;
    opts.max_steps = 1'000'000;
    const auto r = converge(
        md.design, md.design.program.random_state(start_rng), d, opts);
    ASSERT_TRUE(r.converged) << "trial " << trial;
    EXPECT_TRUE(md.is_maximal_matching(g, r.final_state));
  }
}

TEST(MatchingTest, PartnerHelpers) {
  const auto g = UndirectedGraph::path(3);  // 0-1-2
  const auto md = make_matching(g);
  State s(md.design.program.num_variables());
  // 0 and 1 point at each other; 2 null.
  s.set(md.ptr[0], 0);   // 0's first neighbor is 1
  s.set(md.ptr[1], 0);   // 1's first neighbor is 0
  s.set(md.ptr[2], -1);
  EXPECT_EQ(md.partner(g, s, 0), 1);
  EXPECT_EQ(md.partner(g, s, 1), 0);
  EXPECT_EQ(md.partner(g, s, 2), -1);
  EXPECT_TRUE(md.is_matching(g, s));
  EXPECT_TRUE(md.is_maximal_matching(g, s));
  // 2 pointing at 1 while 1 points at 0 is not a matching.
  s.set(md.ptr[2], 0);  // 2's first neighbor is 1
  EXPECT_FALSE(md.is_matching(g, s));
}

}  // namespace
}  // namespace nonmask
