// Live telemetry: RSS helpers, the heartbeat JSONL schema, off-by-default
// cost contracts, the background sampler under concurrent writers, and the
// final-heartbeat == run-report accounting identity.
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "checker/state_space.hpp"
#include "obs/dashboard.hpp"
#include "obs/progress.hpp"
#include "obs/rss.hpp"
#include "obs/telemetry.hpp"
#include "protocols/token_ring.hpp"
#include "store/concurrent_set.hpp"
#include "store/facade.hpp"
#include "store/packed.hpp"

namespace nonmask {
namespace {

using obs::HeartbeatSample;
using obs::Telemetry;

TEST(RssTest, PeakIsPositiveAndCurrentIsSane) {
  EXPECT_GT(obs::peak_rss_mb(), 0.0);
  // /proc may be absent on exotic platforms; when present the value is
  // positive and cannot exceed the peak by more than sampling noise.
  const double current = obs::current_rss_mb();
  EXPECT_GE(current, 0.0);
  if (current > 0.0) {
    EXPECT_LE(current, obs::peak_rss_mb() * 1.5 + 16.0);
  }
}

TEST(TelemetryTest, OffByDefault) {
  ASSERT_FALSE(Telemetry::running());
  ASSERT_FALSE(Telemetry::counting());
  // A meter with an exploration label must not feed the depth counter
  // while telemetry is off.
  const std::uint64_t before =
      Telemetry::depth().states_explored.load(std::memory_order_relaxed);
  {
    obs::ProgressMeter meter("convergence-dfs", 100);
    meter.add(42);
  }
  EXPECT_EQ(
      Telemetry::depth().states_explored.load(std::memory_order_relaxed),
      before);
}

// The key set and order of a heartbeat line are a parsing contract
// (bench_compare.py --telemetry, the dashboard smoke in check.sh). This
// golden sample uses binary-exact doubles so "%.17g" renders them short.
TEST(TelemetryTest, HeartbeatJsonSchemaGolden) {
  HeartbeatSample hb;
  hb.seq = 3;
  hb.t_ms = 600;
  hb.states_explored = 1000;
  hb.states_per_sec = 1234.5;
  hb.frontier = 77;
  hb.rss_mb = 12.5;
  hb.peak_rss_mb = 20.25;
  hb.workers = 8;
  hb.set_probes = 11;
  hb.set_grows = 2;
  hb.set_cas_retries = 1;
  hb.arena_slab_allocs = 4;
  hb.arena_slab_bytes = 4096;
  hb.frontier_spill_flushes = 1;
  hb.frontier_spill_bytes = 512;
  hb.frontier_levels = 9;
  hb.frontier_merge_rounds = 3;
  hb.campaign_trials = 5;
  hb.campaign_retries = 1;
  hb.campaign_timeouts = 0;
  obs::MeterSample meter;
  meter.label = "store-reach";
  meter.done = 1000;
  meter.total = 1296;
  meter.aux = {{"frontier", 77}};
  hb.meters.push_back(meter);
  obs::SetSample set;
  set.shards = 4;
  set.materialized = 2;
  set.entries = 1000;
  set.capacity = 2048;
  set.max_probe = 5;
  set.arena_bytes = 8192;
  set.shard_entries = {600, 400, 0, 0};
  hb.sets.push_back(set);

  EXPECT_EQ(
      obs::to_json(hb),
      "{\"seq\":3,\"t_ms\":600,\"states\":1000,\"states_per_sec\":1234.5,"
      "\"frontier\":77,\"rss_mb\":12.5,\"peak_rss_mb\":20.25,\"workers\":8,"
      "\"counters\":{\"set_probes\":11,\"set_grows\":2,\"set_cas_retries\":1,"
      "\"arena_slab_allocs\":4,\"arena_slab_bytes\":4096,"
      "\"frontier_spill_flushes\":1,\"frontier_spill_bytes\":512,"
      "\"frontier_levels\":9,\"frontier_merge_rounds\":3,"
      "\"campaign_trials\":5,\"campaign_retries\":1,\"campaign_timeouts\":0},"
      "\"meters\":[{\"label\":\"store-reach\",\"done\":1000,\"total\":1296,"
      "\"aux\":{\"frontier\":77}}],"
      "\"sets\":[{\"shards\":4,\"materialized\":2,\"entries\":1000,"
      "\"capacity\":2048,\"max_probe\":5,\"arena_bytes\":8192,"
      "\"shard_entries\":[600,400,0,0]}]}");
}

/// Concurrent writers (meter ticks + set inserts) racing the 1 ms sampler:
/// the final heartbeat must account for every unit of work, at any thread
/// count. Run under TSan in CI.
void run_sampler_race(unsigned threads) {
  const auto tr = make_dijkstra_ring(4, 6);  // 6^4 = 1296 states
  const StateSpace space(tr.design.program);
  const store::PackedLayout layout(tr.design.program);

  const std::uint64_t explored_before =
      Telemetry::depth().states_explored.load(std::memory_order_relaxed);
  obs::TelemetryOptions opts;
  opts.interval_ms = 1;  // in-memory sink, aggressive sampling
  Telemetry::start(opts);
  ASSERT_TRUE(Telemetry::running());
  ASSERT_TRUE(Telemetry::counting());

  {
    store::ConcurrentPackedSet set(layout, /*shard_bits=*/4, /*seed=*/1,
                                   space.size());
    obs::ProgressMeter meter("store-reach", space.size());
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        const std::uint64_t lo = space.size() * t / threads;
        const std::uint64_t hi = space.size() * (t + 1) / threads;
        std::vector<std::uint64_t> words(layout.words());
        State s(space.program().num_variables());
        for (std::uint64_t code = lo; code < hi; ++code) {
          space.decode_into(code, s);
          layout.pack(s, words.data());
          set.insert(words.data());
          meter.add(1);
          meter.aux("frontier", code - lo);
        }
      });
    }
    for (auto& w : workers) w.join();

    // Sets and meters are sampled while still alive: the final heartbeat
    // sees the completed run.
    Telemetry::stop();
    const std::vector<HeartbeatSample> series = Telemetry::samples();
    ASSERT_FALSE(series.empty());
    const HeartbeatSample& last = series.back();
    EXPECT_EQ(last.states_explored - explored_before, space.size());
    ASSERT_EQ(last.sets.size(), 1u);
    EXPECT_EQ(last.sets[0].entries, space.size());
    EXPECT_EQ(last.sets[0].shards, 16u);
    EXPECT_GT(last.sets[0].max_probe, 0u);
    EXPECT_GE(last.set_probes, space.size());
    ASSERT_EQ(last.meters.size(), 1u);
    EXPECT_EQ(last.meters[0].done, space.size());
    for (std::size_t i = 1; i < series.size(); ++i) {
      EXPECT_GE(series[i].states_explored, series[i - 1].states_explored);
      EXPECT_GE(series[i].t_ms, series[i - 1].t_ms);
    }
  }
  EXPECT_FALSE(Telemetry::counting());
}

TEST(TelemetryTest, SamplerWithOneWriter) { run_sampler_race(1); }
TEST(TelemetryTest, SamplerWithTwoWriters) { run_sampler_race(2); }
TEST(TelemetryTest, SamplerWithEightWriters) { run_sampler_race(8); }

// The accounting identity behind the store_scale dashboard: the weakly-fair
// SCC pass pushes each ¬S region state exactly once (the flags pre-pass is
// deliberately not classified as exploration), so the final heartbeat's
// cumulative count equals the report's region_states.
TEST(TelemetryTest, FinalHeartbeatMatchesWeaklyFairCheck) {
  const auto tr = make_dijkstra_ring(4, 6);
  const StateSpace space(tr.design.program);
  store::StoreConfig cfg;
  cfg.backend = store::StoreBackend::kStore;
  cfg.threads = 2;

  const std::uint64_t explored_before =
      Telemetry::depth().states_explored.load(std::memory_order_relaxed);
  obs::TelemetryOptions opts;
  opts.interval_ms = 1;
  Telemetry::start(opts);
  const auto report = store::check_convergence_weakly_fair_via(
      cfg, space, tr.design.S(), tr.design.T());
  Telemetry::stop();

  EXPECT_EQ(report.verdict, ConvergenceVerdict::kConverges);
  const std::vector<HeartbeatSample> series = Telemetry::samples();
  ASSERT_FALSE(series.empty());
  EXPECT_EQ(series.back().states_explored - explored_before,
            report.region_states);
  EXPECT_GT(report.region_states, 0u);
}

TEST(TelemetryTest, JsonlSinkWritesOneObjectPerHeartbeat) {
  const std::string path =
      testing::TempDir() + "/nonmask_telemetry_test.jsonl";
  obs::TelemetryOptions opts;
  opts.path = path;
  opts.interval_ms = 1;
  Telemetry::start(opts);
  {
    obs::ProgressMeter meter("reach", 10);
    for (int i = 0; i < 10; ++i) {
      meter.add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  Telemetry::stop();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  std::uint64_t prev_seq = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    const std::string seq_key = "{\"seq\":" + std::to_string(lines) + ",";
    EXPECT_EQ(line.rfind(seq_key, 0), 0u);
    ++lines;
  }
  EXPECT_EQ(lines, Telemetry::samples().size());
  EXPECT_GE(lines, 2u);  // at least one periodic + the final heartbeat
  std::remove(path.c_str());
}

TEST(TelemetryTest, DashboardHtmlIsSelfContained) {
  obs::TelemetryOptions opts;
  opts.interval_ms = 1;
  Telemetry::start(opts);
  {
    obs::ProgressMeter meter("store-reach", 1000);
    for (int i = 0; i < 5; ++i) {
      meter.add(200);
      meter.aux("frontier", static_cast<std::uint64_t>(40 * (i + 1)));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  Telemetry::stop();

  obs::DashboardSpec spec;
  spec.title = "telemetry <unit> test";
  spec.subtitle = "synthetic run";
  spec.summary = {{"verdict", "converges"}, {"states", "1000"}};
  spec.samples = Telemetry::samples();
  std::ostringstream html;
  obs::write_dashboard_html(html, spec);
  const std::string page = html.str();

  EXPECT_NE(page.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(page.find("<svg"), std::string::npos);
  EXPECT_NE(page.find("telemetry &lt;unit&gt; test"), std::string::npos);
  // Self-containment: nothing is fetched from anywhere.
  EXPECT_EQ(page.find("http://"), std::string::npos);
  EXPECT_EQ(page.find("https://"), std::string::npos);
  EXPECT_EQ(page.find("src="), std::string::npos);
  EXPECT_EQ(page.find("<link"), std::string::npos);
  EXPECT_EQ(page.find("@import"), std::string::npos);
}

}  // namespace
}  // namespace nonmask
