// E5: stabilizing token rings (Section 7.1).
// Bounded paper design: exhaustive closure + convergence; Dijkstra mod-K
// ring: stabilization boundary in K, single-token circulation, fairness of
// privilege passing.
#include <gtest/gtest.h>

#include "checker/closure_check.hpp"
#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "engine/simulator.hpp"
#include "protocols/token_ring.hpp"
#include "sched/daemons.hpp"

namespace nonmask {
namespace {

TEST(TokenRingBoundedTest, PaperSClosedAndConvergesExhaustively) {
  for (const int n : {2, 3, 4}) {
    for (const Value x_max : {2, 3}) {
      for (const bool combined : {false, true}) {
        const auto tr = make_token_ring_bounded(n, x_max, combined);
        StateSpace space(tr.design.program);
        EXPECT_TRUE(check_closed(space, tr.design.S()).closed)
            << "n=" << n << " x_max=" << x_max << " combined=" << combined;
        const auto report =
            check_convergence(space, tr.design.S(), tr.design.T());
        EXPECT_EQ(report.verdict, ConvergenceVerdict::kConverges)
            << "n=" << n << " x_max=" << x_max << " combined=" << combined;
      }
    }
  }
}

TEST(TokenRingBoundedTest, ExactlyOnePrivilegeInS) {
  const auto tr = make_token_ring_bounded(4, 3, true);
  StateSpace space(tr.design.program);
  const auto S = tr.design.S();
  State s(tr.design.program.num_variables());
  std::uint64_t s_states = 0;
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, s);
    if (!S(s)) continue;
    ++s_states;
    EXPECT_EQ(tr.privileges(s), 1) << tr.design.program.format_state(s);
  }
  EXPECT_GT(s_states, 0u);
}

TEST(TokenRingBoundedTest, LayersPartitionConvergenceActions) {
  const auto tr = make_token_ring_bounded(5, 4, false);
  ASSERT_EQ(tr.layers.size(), 2u);
  EXPECT_EQ(tr.layers[0].size(), 4u);  // raise@1..raise@4
  EXPECT_EQ(tr.layers[1].size(), 4u);  // level@1..level@4
  for (const auto& layer : tr.layers) {
    for (std::size_t idx : layer) {
      EXPECT_EQ(tr.design.program.action(idx).kind(),
                ActionKind::kConvergence);
      EXPECT_GE(tr.design.program.action(idx).constraint_id(), 0);
    }
  }
}

TEST(TokenRingBoundedTest, TokenPassesDownTheLine) {
  // From all-zero (S state, node 0 privileged), the token moves 0 -> 1 ->
  // ... -> N and back to 0 under the first-enabled daemon.
  const auto tr = make_token_ring_bounded(5, 6, true);
  FirstEnabledDaemon d;
  Simulator sim(tr.design.program, d);
  RunOptions opts;
  opts.max_steps = 1;
  State s = tr.design.program.initial_state();
  EXPECT_EQ(tr.first_privileged(s), 0);
  int expected = 1;
  for (int step = 0; step < 5; ++step) {
    s = sim.run(s, opts).final_state;
    EXPECT_EQ(tr.first_privileged(s), expected % 5)
        << tr.design.program.format_state(s);
    expected = (expected + 1) % 5 == 0 ? 0 : expected + 1;
    if (tr.first_privileged(s) == 0) break;
  }
}

TEST(DijkstraRingTest, StabilizesExhaustivelyWhenKAtLeastN) {
  for (const int n : {2, 3, 4}) {
    for (const int K : {n, n + 1, n + 2}) {
      const auto tr = make_dijkstra_ring(n, K);
      StateSpace space(tr.design.program);
      EXPECT_TRUE(check_closed(space, tr.design.S()).closed)
          << "n=" << n << " K=" << K;
      const auto report =
          check_convergence(space, tr.design.S(), tr.design.T());
      EXPECT_EQ(report.verdict, ConvergenceVerdict::kConverges)
          << "n=" << n << " K=" << K;
    }
  }
}

TEST(DijkstraRingTest, SmallKAdmitsLivelock) {
  // Dijkstra's bound is tight-ish: K = n - 2 livelocks for n >= 4.
  const auto tr = make_dijkstra_ring(5, 3);
  StateSpace space(tr.design.program);
  const auto report = check_convergence(space, tr.design.S(), tr.design.T());
  EXPECT_EQ(report.verdict, ConvergenceVerdict::kViolated);
  EXPECT_TRUE(report.cycle.has_value());
}

TEST(DijkstraRingTest, PerpetualCirculationVisitsEveryNode) {
  const auto tr = make_dijkstra_ring(6, 7);
  RoundRobinDaemon d;
  Simulator sim(tr.design.program, d);
  State s = tr.design.program.initial_state();  // all zero: S state
  ASSERT_TRUE(tr.design.S()(s));
  RunOptions opts;
  opts.max_steps = 500;
  opts.record_snapshots = true;
  opts.stop_when = [](const State&) { return false; };
  const auto r = sim.run(s, opts);
  std::vector<int> visits(6, 0);
  for (const State& snap : r.trace.snapshots()) {
    ASSERT_TRUE(tr.design.S()(snap));
    ++visits[static_cast<std::size_t>(tr.first_privileged(snap))];
  }
  for (int j = 0; j < 6; ++j) {
    EXPECT_GT(visits[static_cast<std::size_t>(j)], 0) << "node " << j;
  }
}

TEST(DijkstraRingTest, ConvergesFromRandomStatesAtScale) {
  for (const int n : {64, 256}) {
    const auto tr = make_dijkstra_ring(n, n + 1);
    RandomDaemon d(31);
    Rng rng(37);
    for (int trial = 0; trial < 3; ++trial) {
      RunOptions opts;
      opts.max_steps = 2'000'000;
      const auto r =
          converge(tr.design, tr.design.program.random_state(rng), d, opts);
      EXPECT_TRUE(r.converged) << "n=" << n;
      EXPECT_EQ(tr.privileges(r.final_state), 1);
    }
  }
}

TEST(DijkstraRingTest, UnfairDaemonStillConverges) {
  // Section 8: the derived programs need no fairness. The adversarial
  // daemon maximizes constraint violations yet cannot prevent convergence.
  const auto tr = make_dijkstra_ring(6, 7);
  AdversarialDaemon d(tr.design.invariant, 41);
  Rng rng(43);
  for (int trial = 0; trial < 20; ++trial) {
    RunOptions opts;
    opts.max_steps = 100'000;
    const auto r =
        converge(tr.design, tr.design.program.random_state(rng), d, opts);
    EXPECT_TRUE(r.converged);
  }
}

TEST(TokenRingTest, ConstructorValidation) {
  EXPECT_THROW(make_token_ring_bounded(1, 3), std::invalid_argument);
  EXPECT_THROW(make_token_ring_bounded(3, 0), std::invalid_argument);
  EXPECT_THROW(make_dijkstra_ring(1, 3), std::invalid_argument);
  EXPECT_THROW(make_dijkstra_ring(3, 1), std::invalid_argument);
}

}  // namespace
}  // namespace nonmask
