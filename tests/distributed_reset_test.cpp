// The distributed-reset application (Section 5.1's origin, [12]): the
// diffusing wave doubles as a reset wave; the application layer rides on
// the stabilization machinery without changing the convergence argument.
#include <gtest/gtest.h>

#include "cgraph/theorems.hpp"
#include "checker/closure_check.hpp"
#include "checker/convergence_check.hpp"
#include "checker/fault_span.hpp"
#include "checker/state_space.hpp"
#include "engine/simulator.hpp"
#include "protocols/distributed_reset.hpp"
#include "sched/daemons.hpp"

namespace nonmask {
namespace {

// The application layer makes fairness load-bearing: an unfair daemon can
// spin `work` actions on green nodes forever and never repair the tree, so
// exact unfair convergence FAILS — while the weakly-fair analysis proves
// convergence (the violated constraint's correction stays enabled
// throughout any spin and escapes it). This is the precise boundary of the
// paper's Section 8 remark that fairness is "often unnecessary": it stops
// being unnecessary once closure work rides on the wave.
TEST(DistributedResetTest, UnfairFailsButWeaklyFairStabilizes) {
  for (const auto& tree :
       {RootedTree::chain(2), RootedTree::chain(3), RootedTree::star(3)}) {
    for (const bool combined : {false, true}) {
      const auto dr = make_distributed_reset(tree, 2, combined);
      StateSpace space(dr.design.program);
      EXPECT_TRUE(check_closed(space, dr.design.S()).closed)
          << tree.size() << " combined=" << combined;
      const auto unfair =
          check_convergence(space, dr.design.S(), dr.design.T());
      EXPECT_EQ(unfair.verdict, ConvergenceVerdict::kViolated)
          << tree.size() << " combined=" << combined;
      EXPECT_TRUE(unfair.cycle.has_value());
      const auto fair = check_convergence_weakly_fair(
          space, dr.design.S(), dr.design.T());
      EXPECT_EQ(fair.verdict, ConvergenceVerdict::kConverges)
          << tree.size() << " combined=" << combined;
    }
  }
}

TEST(DistributedResetTest, Theorem1ValidatesSeparatedForm) {
  const auto dr =
      make_distributed_reset(RootedTree::balanced(4, 2), 2, false);
  StateSpace space(dr.design.program);
  ValidationOptions opts;
  opts.space = &space;
  const auto cg = infer_constraint_graph(dr.design.program);
  ASSERT_TRUE(cg.ok) << cg.error;
  const auto report = validate_theorem1(dr.design, cg.graph, opts);
  EXPECT_TRUE(report.applies) << format_report(report);
  EXPECT_EQ(report.shape, GraphShape::kOutTree);
}

// The reset guarantee: during each wave the root initiates in S, every
// node passes through the reset state (red with app == 0) before the wave
// completes at the root.
TEST(DistributedResetTest, WaveResetsEveryNode) {
  const auto tree = RootedTree::balanced(7, 2);
  const auto dr = make_distributed_reset(tree, 4, true);
  const Design& d = dr.design;
  RandomDaemon daemon(3);
  Simulator sim(d.program, daemon);

  State s = d.program.initial_state();
  ASSERT_TRUE(d.S()(s));
  const VarId root_c = dr.color[static_cast<std::size_t>(tree.root())];

  RunOptions opts;
  opts.max_steps = 1;
  int waves_checked = 0;
  std::vector<bool> reset_seen(7, false);
  bool in_wave = false;
  for (int step = 0; step < 4000 && waves_checked < 5; ++step) {
    s = sim.run(s, opts).final_state;
    const bool root_red = s.get(root_c) == kRed;
    if (root_red && !in_wave) {
      in_wave = true;
      std::fill(reset_seen.begin(), reset_seen.end(), false);
    }
    if (in_wave) {
      for (int j = 0; j < 7; ++j) {
        if (dr.reset_at(s, j)) reset_seen[static_cast<std::size_t>(j)] = true;
      }
      if (!root_red) {  // wave completed
        in_wave = false;
        ++waves_checked;
        for (int j = 0; j < 7; ++j) {
          EXPECT_TRUE(reset_seen[static_cast<std::size_t>(j)])
              << "wave " << waves_checked << " missed node " << j;
        }
      }
    }
  }
  EXPECT_GE(waves_checked, 5);
}

TEST(DistributedResetTest, WorkOnlyWhileGreen) {
  const auto dr = make_distributed_reset(RootedTree::chain(3), 3, true);
  StateSpace space(dr.design.program);
  State s(dr.design.program.num_variables());
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, s);
    for (int j = 0; j < 3; ++j) {
      const auto& work = dr.design.program.action(static_cast<std::size_t>(j));
      ASSERT_EQ(work.name().rfind("work@", 0), 0u);
      if (work.enabled(s)) {
        EXPECT_EQ(s.get(dr.color[static_cast<std::size_t>(j)]), kGreen);
      }
    }
  }
}

// Fault-span discovery: under color/session corruption (app untouched),
// the reachable fault-span is the full color/session product — a concrete
// use of compute_fault_span.
TEST(DistributedResetTest, InducedFaultSpanIsEverythingUnderFullCorruption) {
  const auto tree = RootedTree::chain(3);
  auto dr = make_distributed_reset(tree, 2, true);
  // Add one fault action that arbitrarily advances c.1 (cyclically).
  const VarId c1 = dr.color[1];
  dr.design.program.add_action(Action(
      "corrupt-c1", ActionKind::kFault, true_predicate(),
      [c1](State& s) { s.set(c1, 1 - s.get(c1)); }, {c1}, {c1}, 1));
  const VarId sn1 = dr.session[1];
  dr.design.program.add_action(Action(
      "corrupt-sn1", ActionKind::kFault, true_predicate(),
      [sn1](State& s) { s.set(sn1, 1 - s.get(sn1)); }, {sn1}, {sn1}, 1));

  StateSpace space(dr.design.program);
  const auto span = compute_fault_span(
      space, dr.design.S(),
      {dr.design.program.num_actions() - 2,
       dr.design.program.num_actions() - 1});
  // The span is a strict superset of S and closed by construction; with
  // only node-1 faults it must still cover every color/session combination
  // of node 1 (app values reachable via work).
  EXPECT_GT(span.size(), 0u);
  const auto S = dr.design.S();
  State s(dr.design.program.num_variables());
  std::uint64_t s_count = 0;
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, s);
    if (S(s)) {
      ++s_count;
      EXPECT_TRUE(span.contains_code(code));  // S inside the span
    }
  }
  EXPECT_GT(span.size(), s_count);

  // Convergence from the *induced* span back to S (weakly fair — the work
  // actions make unfair convergence impossible, see above).
  const auto report =
      check_convergence_weakly_fair(space, S, span.as_predicate());
  EXPECT_EQ(report.verdict, ConvergenceVerdict::kConverges);
}

TEST(DistributedResetTest, RecoversAtScale) {
  Rng tree_rng(5);
  const auto tree = RootedTree::random(40, tree_rng);
  const auto dr = make_distributed_reset(tree, 8, true);
  RandomDaemon daemon(7);
  Rng rng(9);
  for (int trial = 0; trial < 5; ++trial) {
    RunOptions opts;
    opts.max_steps = 300'000;
    const auto r = converge(
        dr.design, dr.design.program.random_state(rng), daemon, opts);
    EXPECT_TRUE(r.converged) << trial;
  }
}

TEST(DistributedResetTest, ConstructorValidation) {
  EXPECT_THROW(make_distributed_reset(RootedTree::chain(2), 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace nonmask
