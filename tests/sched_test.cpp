// Unit tests for the daemons.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/builder.hpp"
#include "sched/daemons.hpp"

namespace nonmask {
namespace {

/// Three always-enabled no-op-ish actions on separate processes.
Program three_toggles() {
  ProgramBuilder b("toggles");
  for (int j = 0; j < 3; ++j) {
    const VarId v = b.boolean("t" + std::to_string(j), j);
    b.closure(
        "toggle@" + std::to_string(j), true_predicate(),
        [v](State& s) { s.set(v, 1 - s.get(v)); }, {v}, {v}, j);
  }
  return b.build();
}

TEST(RandomDaemonTest, SelectsOnlyEnabledAndIsDeterministic) {
  Program p = three_toggles();
  State s = p.initial_state();
  RandomDaemon d1(42), d2(42);
  const auto enabled = p.enabled_actions(s);
  for (int i = 0; i < 50; ++i) {
    const auto a = d1.select(p, s, enabled);
    const auto b = d2.select(p, s, enabled);
    ASSERT_EQ(a.size(), 1u);
    EXPECT_EQ(a, b);
    EXPECT_LT(a[0], 3u);
  }
}

TEST(RandomDaemonTest, ResetReplaysStream) {
  Program p = three_toggles();
  State s = p.initial_state();
  RandomDaemon d(7);
  const auto enabled = p.enabled_actions(s);
  std::vector<std::size_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(d.select(p, s, enabled)[0]);
  d.reset();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(d.select(p, s, enabled)[0], first[static_cast<std::size_t>(i)]);
  }
}

TEST(RoundRobinDaemonTest, CyclesThroughActions) {
  Program p = three_toggles();
  State s = p.initial_state();
  RoundRobinDaemon d;
  const auto enabled = p.enabled_actions(s);
  EXPECT_EQ(d.select(p, s, enabled)[0], 0u);
  EXPECT_EQ(d.select(p, s, enabled)[0], 1u);
  EXPECT_EQ(d.select(p, s, enabled)[0], 2u);
  EXPECT_EQ(d.select(p, s, enabled)[0], 0u);
}

TEST(RoundRobinDaemonTest, SkipsDisabled) {
  Program p = three_toggles();
  State s = p.initial_state();
  RoundRobinDaemon d;
  EXPECT_EQ(d.select(p, s, {1})[0], 1u);
  EXPECT_EQ(d.select(p, s, {0, 1})[0], 0u);  // cursor wrapped past 1
}

TEST(FirstEnabledDaemonTest, AlwaysLowest) {
  Program p = three_toggles();
  State s = p.initial_state();
  FirstEnabledDaemon d;
  EXPECT_EQ(d.select(p, s, {2, 1})[0], 2u);  // front of the provided list
  EXPECT_EQ(d.select(p, s, {0, 1, 2})[0], 0u);
}

TEST(AdversarialDaemonTest, PicksMostViolatingSuccessor) {
  // Two actions: one establishes the constraint, one violates it. The
  // adversary must pick the violating one.
  ProgramBuilder b("adv");
  const VarId x = b.var("x", 0, 1);
  b.closure(
      "good", true_predicate(), [x](State& s) { s.set(x, 0); }, {x}, {x});
  b.closure(
      "bad", true_predicate(), [x](State& s) { s.set(x, 1); }, {x}, {x});
  Program p = b.build();
  Invariant inv;
  inv.add(Constraint{"x==0", [x](const State& s) { return s.get(x) == 0; },
                     {x}});
  AdversarialDaemon d(inv, 1);
  State s = p.initial_state();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(d.select(p, s, {0, 1})[0], 1u);
  }
}

TEST(DistributedDaemonTest, AlwaysNonEmptyAndSubsetOfEnabled) {
  Program p = three_toggles();
  State s = p.initial_state();
  DistributedDaemon d(0.5, 3);
  for (int i = 0; i < 100; ++i) {
    const auto chosen = d.select(p, s, {0, 1, 2});
    EXPECT_GE(chosen.size(), 1u);
    for (std::size_t a : chosen) EXPECT_LT(a, 3u);
  }
  DistributedDaemon never(0.0, 3);
  EXPECT_EQ(never.select(p, s, {0, 1, 2}).size(), 1u);
  DistributedDaemon always(1.0, 3);
  EXPECT_EQ(always.select(p, s, {0, 1, 2}).size(), 3u);
}

TEST(SynchronousDaemonTest, OneActionPerProcess) {
  ProgramBuilder b("sync");
  const VarId u = b.boolean("u", 0);
  const VarId v = b.boolean("v", 1);
  // Two actions on process 0, one on process 1.
  b.closure("a0", true_predicate(), [u](State& s) { s.set(u, 1); }, {u}, {u}, 0);
  b.closure("a1", true_predicate(), [u](State& s) { s.set(u, 0); }, {u}, {u}, 0);
  b.closure("b0", true_predicate(), [v](State& s) { s.set(v, 1); }, {v}, {v}, 1);
  Program p = b.build();
  SynchronousDaemon d;
  const auto chosen = d.select(p, p.initial_state(), {0, 1, 2});
  EXPECT_EQ(chosen, (std::vector<std::size_t>{0, 2}));
}

TEST(SynchronousDaemonTest, ProcesslessActionsAllFire) {
  ProgramBuilder b("sync2");
  const VarId u = b.boolean("u");
  b.closure("g0", true_predicate(), [u](State& s) { s.set(u, 1); }, {u}, {u});
  b.closure("g1", true_predicate(), [u](State& s) { s.set(u, 0); }, {u}, {u});
  Program p = b.build();
  SynchronousDaemon d;
  EXPECT_EQ(d.select(p, p.initial_state(), {0, 1}).size(), 2u);
}

TEST(WeaklyFairDaemonTest, ForcesStarvedAction) {
  Program p = three_toggles();
  State s = p.initial_state();
  // Inner daemon always picks the front action — starving the rest.
  auto inner = std::make_unique<FirstEnabledDaemon>();
  WeaklyFairDaemon d(std::move(inner), 5);
  std::set<std::size_t> fired;
  for (int i = 0; i < 40; ++i) {
    fired.insert(d.select(p, s, {0, 1, 2})[0]);
  }
  EXPECT_EQ(fired.size(), 3u);  // everyone eventually fires
}

}  // namespace
}  // namespace nonmask
