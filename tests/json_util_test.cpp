// The hand-rolled JSON reader underneath the spec DSL: exact int64 vs
// double tokens, escape decoding, line/col error positions, duplicate-key
// rejection, builder chaining, and dump -> parse round-trips.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "util/json.hpp"

namespace nonmask {
namespace {

using util::JsonParseError;
using util::JsonValue;
using util::dump_json;
using util::jarr;
using util::jbool;
using util::jint;
using util::jnull;
using util::jobj;
using util::json_quote;
using util::jstr;
using util::parse_json;

TEST(JsonUtilTest, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").bool_value);
  EXPECT_FALSE(parse_json("false").bool_value);
  EXPECT_EQ(parse_json("42").int_value, 42);
  EXPECT_EQ(parse_json("-7").int_value, -7);
  EXPECT_EQ(parse_json("\"hi\"").string_value, "hi");
}

TEST(JsonUtilTest, IntegralTokensStayExactInt64) {
  const JsonValue v = parse_json("9007199254740993");
  ASSERT_TRUE(v.is_int());
  EXPECT_EQ(v.int_value, 9007199254740993LL);  // would lose precision as double
  EXPECT_TRUE(parse_json("1.5").type == JsonValue::Type::kDouble);
  EXPECT_TRUE(parse_json("1e3").type == JsonValue::Type::kDouble);
  EXPECT_DOUBLE_EQ(parse_json("1e3").as_double(), 1000.0);
}

TEST(JsonUtilTest, DecodesEscapes) {
  const JsonValue v = parse_json(R"("a\n\t\"\\\u0041\u00e9")");
  EXPECT_EQ(v.string_value, "a\n\t\"\\A\xc3\xa9");
}

TEST(JsonUtilTest, DecodesSurrogatePairs) {
  // U+1F600 as a surrogate pair -> 4-byte UTF-8.
  const JsonValue v = parse_json(R"("\ud83d\ude00")");
  EXPECT_EQ(v.string_value, "\xf0\x9f\x98\x80");
}

TEST(JsonUtilTest, ArraysAndObjectsPreserveOrder) {
  const JsonValue v = parse_json(R"({"b": [1, 2, 3], "a": {"x": true}})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.object.size(), 2u);
  EXPECT_EQ(v.object[0].first, "b");  // document order, not sorted
  EXPECT_EQ(v.object[1].first, "a");
  ASSERT_EQ(v.object[0].second.array.size(), 3u);
  EXPECT_EQ(v.object[0].second.array[2].int_value, 3);
  const JsonValue* x = v.object[1].second.find("x");
  ASSERT_NE(x, nullptr);
  EXPECT_TRUE(x->bool_value);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonUtilTest, ValuesCarryLineAndColumn) {
  const JsonValue v = parse_json("{\n  \"a\": 1,\n  \"b\": [true]\n}");
  EXPECT_EQ(v.line, 1);
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->line, 2);
  const JsonValue* b = v.find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->line, 3);
  ASSERT_EQ(b->array.size(), 1u);
  EXPECT_EQ(b->array[0].line, 3);
}

TEST(JsonUtilTest, RejectsDuplicateKeys) {
  try {
    parse_json(R"({"job": 1, "job": 2})");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
  }
}

TEST(JsonUtilTest, RejectsTrailingGarbageAndBadTokens) {
  EXPECT_THROW(parse_json("1 2"), JsonParseError);
  EXPECT_THROW(parse_json("{"), JsonParseError);
  EXPECT_THROW(parse_json("[1,]"), JsonParseError);
  EXPECT_THROW(parse_json("{\"a\" 1}"), JsonParseError);
  EXPECT_THROW(parse_json("nul"), JsonParseError);
  EXPECT_THROW(parse_json(""), JsonParseError);
  EXPECT_THROW(parse_json("\"unterminated"), JsonParseError);
}

TEST(JsonUtilTest, ErrorsReportPosition) {
  try {
    parse_json("{\n  \"a\": @\n}");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_GT(e.col(), 1);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(JsonUtilTest, BuildersChainAndDump) {
  JsonValue doc = jobj();
  doc.add("name", jstr("demo"))
      .add("n", jint(4))
      .add("flag", jbool(true))
      .add("none", jnull())
      .add("xs", jarr().push(jint(1)).push(jint(2)));
  const std::string text = dump_json(doc);
  EXPECT_EQ(text.back(), '\n');
  const JsonValue back = parse_json(text);
  EXPECT_EQ(back.find("name")->string_value, "demo");
  EXPECT_EQ(back.find("n")->int_value, 4);
  EXPECT_TRUE(back.find("flag")->bool_value);
  EXPECT_TRUE(back.find("none")->is_null());
  EXPECT_EQ(back.find("xs")->array.size(), 2u);
  // Dump is deterministic: same document, same bytes.
  EXPECT_EQ(text, dump_json(parse_json(text)));
}

TEST(JsonUtilTest, QuoteEscapesControlCharacters) {
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(json_quote(std::string(1, '\x01')), "\"\\u0001\"");
}

}  // namespace
}  // namespace nonmask
