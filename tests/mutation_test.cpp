// Mutation tests: break each protocol in a specific, realistic way and
// assert the exact checker refutes the mutant. This guards the test suite
// itself — if the checker (or the protocols' S predicates) ever weakened,
// these mutants would start passing.
#include <gtest/gtest.h>

#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "core/builder.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/matching.hpp"
#include "protocols/token_ring.hpp"

namespace nonmask {
namespace {

// Mutant: the diffusing correction copies the color but forgets the
// session number. A node whose color already matches but whose session
// differs then "corrects" without changing anything — a self-loop outside
// S that the checker must exhibit as a cycle.
TEST(MutationTest, DiffusingWithoutSessionCopyLivelocks) {
  const auto tree = RootedTree::chain(3);
  const auto good = make_diffusing(tree, true);

  ProgramBuilder b("diffusing-mutant");
  for (const auto& v : good.design.program.variables()) b.var(v.name, v.lo, v.hi, v.process);
  Program mutant_program = b.build();
  for (const auto& a : good.design.program.actions()) {
    if (a.name().rfind("propagate-or-correct", 0) == 0) {
      // Rebuild the action with a statement that copies only the color.
      const int j = a.process();
      const VarId cj = good.color[static_cast<std::size_t>(j)];
      const VarId cp = good.color[static_cast<std::size_t>(tree.parent(j))];
      Action broken(
          a.name() + "-mutant", a.kind(), a.guard(),
          [cj, cp](State& s) { s.set(cj, s.get(cp)); }, a.reads(), {cj},
          a.process());
      broken.set_constraint_id(a.constraint_id());
      mutant_program.add_action(std::move(broken));
    } else {
      mutant_program.add_action(a);
    }
  }
  Design mutant;
  mutant.program = std::move(mutant_program);
  mutant.invariant = good.design.invariant;
  mutant.fault_span = true_predicate();

  StateSpace space(mutant.program);
  const auto report = check_convergence(space, mutant.S(), mutant.T());
  EXPECT_EQ(report.verdict, ConvergenceVerdict::kViolated);
  EXPECT_TRUE(report.cycle.has_value());
}

// Mutant: matching without the retract rule. Chains of one-directional
// proposals wedge: a node pointing at an already-married neighbor can
// never withdraw — a ¬S deadlock.
TEST(MutationTest, MatchingWithoutRetractDeadlocks) {
  const auto g = UndirectedGraph::path(3);
  const auto good = make_matching(g);

  Design mutant;
  mutant.program = Program("matching-mutant");
  for (const auto& v : good.design.program.variables()) {
    mutant.program.add_variable(v);
  }
  for (const auto& a : good.design.program.actions()) {
    if (a.name().rfind("retract", 0) == 0) continue;
    mutant.program.add_action(a);
  }
  mutant.S_override = good.design.S_override;
  mutant.fault_span = true_predicate();

  StateSpace space(mutant.program);
  const auto report = check_convergence(space, mutant.S(), mutant.T());
  EXPECT_EQ(report.verdict, ConvergenceVerdict::kViolated);
  EXPECT_TRUE(report.deadlock.has_value());
}

// Mutant: the bounded token ring without the ceiling guard. The increment
// drives x.0 out of its domain — the in-domain audit catches it even
// though the paper's unbounded semantics would be fine.
TEST(MutationTest, UnguardedIncrementEscapesDomain) {
  const auto good = make_token_ring_bounded(3, 2, true);
  Design mutant;
  mutant.program = Program("ring-mutant");
  for (const auto& v : good.design.program.variables()) {
    mutant.program.add_variable(v);
  }
  const VarId x0 = good.x[0];
  const VarId xN = good.x[2];
  mutant.program.add_action(Action(
      "increment-unguarded", ActionKind::kClosure,
      [x0, xN](const State& s) { return s.get(x0) == s.get(xN); },
      [x0](State& s) { s.set(x0, s.get(x0) + 1); }, {x0, xN}, {x0}, 0));
  for (const auto& a : good.design.program.actions()) {
    if (a.name().rfind("increment", 0) == 0) continue;
    mutant.program.add_action(a);
  }

  StateSpace space(mutant.program);
  bool escaped = false;
  State s(mutant.program.num_variables());
  for (std::uint64_t code = 0; code < space.size() && !escaped; ++code) {
    space.decode_into(code, s);
    for (const auto& a : mutant.program.actions()) {
      if (a.enabled(s) && !mutant.program.in_domain(a.apply(s))) {
        escaped = true;
        break;
      }
    }
  }
  EXPECT_TRUE(escaped);
}

// Control: the same rebuild pipeline applied without mutation preserves
// the original verdict (guards the test harness against rebuild bugs).
TEST(MutationTest, IdentityRebuildPreservesVerdict) {
  const auto tree = RootedTree::chain(3);
  const auto good = make_diffusing(tree, true);
  Design copy;
  copy.program = Program("diffusing-copy");
  for (const auto& v : good.design.program.variables()) {
    copy.program.add_variable(v);
  }
  for (const auto& a : good.design.program.actions()) {
    copy.program.add_action(a);
  }
  copy.invariant = good.design.invariant;
  copy.fault_span = true_predicate();
  StateSpace space(copy.program);
  EXPECT_EQ(check_convergence(space, copy.S(), copy.T()).verdict,
            ConvergenceVerdict::kConverges);
}

}  // namespace
}  // namespace nonmask
