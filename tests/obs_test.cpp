// Tests for the observability subsystem (src/obs/): metrics registry
// concurrency (these run under the ThreadSanitizer job too), tracing spans
// and Chrome trace export, progress meters, run reports, JSON writing, and
// the opt-in log line prefix.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "parallel/thread_pool.hpp"
#include "util/logging.hpp"

namespace nonmask {
namespace {

/// Metrics collection is a process-wide switch: flip it on for the fixture
/// and restore the default (off) afterwards so other tests see dormant
/// instrumentation.
class ObsMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Metrics::set_enabled(true);
    obs::Registry::instance().reset();
  }
  void TearDown() override {
    obs::Registry::instance().reset();
    obs::Metrics::set_enabled(false);
  }
};

TEST_F(ObsMetricsTest, DisabledRecordingIsDropped) {
  obs::Metrics::set_enabled(false);
  auto& c = obs::Registry::instance().counter("test.disabled");
  auto& h = obs::Registry::instance().histogram("test.disabled_hist");
  c.add(5);
  h.record(17);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
  obs::Metrics::set_enabled(true);
  c.add(5);
  EXPECT_EQ(c.value(), 5u);
}

TEST_F(ObsMetricsTest, RegistryFindsByNameAndSnapshots) {
  auto& registry = obs::Registry::instance();
  auto& c1 = registry.counter("test.alpha");
  auto& c2 = registry.counter("test.alpha");
  EXPECT_EQ(&c1, &c2);  // find-or-create returns the same object
  c1.add(3);
  registry.gauge("test.rate").set(2.5);
  registry.histogram("test.h").record(8);

  const auto snap = registry.snapshot();
  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "test.alpha") {
      saw_counter = true;
      EXPECT_EQ(value, 3u);
    }
  }
  for (const auto& [name, value] : snap.gauges) {
    if (name == "test.rate") {
      saw_gauge = true;
      EXPECT_DOUBLE_EQ(value, 2.5);
    }
  }
  for (const auto& [name, value] : snap.histograms) {
    if (name == "test.h") {
      saw_hist = true;
      EXPECT_EQ(value.count, 1u);
      EXPECT_EQ(value.min, 8u);
      EXPECT_EQ(value.max, 8u);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_hist);
}

TEST_F(ObsMetricsTest, HistogramStatsAndPercentiles) {
  auto& h = obs::Registry::instance().histogram("test.latency");
  for (std::uint64_t v : {0ull, 1ull, 2ull, 4ull, 100ull, 1000ull}) {
    h.record(v);
  }
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 6u);
  EXPECT_EQ(snap.sum, 1107u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_DOUBLE_EQ(snap.mean(), 1107.0 / 6.0);
  // Percentiles are bucket upper bounds clamped to [min, max].
  EXPECT_DOUBLE_EQ(snap.approx_percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(snap.approx_percentile(1.0), 1000.0);
  const double p50 = snap.approx_percentile(0.5);
  EXPECT_GE(p50, 0.0);
  EXPECT_LE(p50, 1000.0);
  h.reset();
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_EQ(h.snapshot().min, 0u);
}

// Satellite requirement: concurrent increments and histogram merges from
// the thread pool at 1, 2, and 8 threads. These are the cases the TSan CI
// job replays.
TEST_F(ObsMetricsTest, ConcurrentCounterIncrements) {
  for (unsigned threads : {1u, 2u, 8u}) {
    auto& c = obs::Registry::instance().counter(
        "test.concurrent." + std::to_string(threads));
    constexpr std::uint64_t kPerTask = 10'000;
    ThreadPool pool(threads);
    for (unsigned t = 0; t < threads; ++t) {
      pool.submit([&c](unsigned) {
        for (std::uint64_t i = 0; i < kPerTask; ++i) c.add(1);
      });
    }
    pool.wait_idle();
    EXPECT_EQ(c.value(), kPerTask * threads) << threads << " threads";
  }
}

TEST_F(ObsMetricsTest, ConcurrentHistogramMerges) {
  for (unsigned threads : {1u, 2u, 8u}) {
    auto& h = obs::Registry::instance().histogram(
        "test.merge." + std::to_string(threads));
    constexpr std::uint64_t kPerTask = 4'096;
    ThreadPool pool(threads);
    for (unsigned t = 0; t < threads; ++t) {
      pool.submit([&h](unsigned) {
        for (std::uint64_t i = 0; i < kPerTask; ++i) h.record(i);
      });
    }
    pool.wait_idle();
    const auto snap = h.snapshot();
    EXPECT_EQ(snap.count, kPerTask * threads) << threads << " threads";
    EXPECT_EQ(snap.sum, threads * (kPerTask * (kPerTask - 1) / 2));
    EXPECT_EQ(snap.min, 0u);
    EXPECT_EQ(snap.max, kPerTask - 1);
  }
}

TEST_F(ObsMetricsTest, SnapshotDuringConcurrentWritesIsRaceFree) {
  auto& h = obs::Registry::instance().histogram("test.live");
  auto& c = obs::Registry::instance().counter("test.live");
  constexpr std::uint64_t kPerTask = 20'000;
  constexpr unsigned kWriters = 4;
  ThreadPool pool(kWriters);
  for (unsigned t = 0; t < kWriters; ++t) {
    pool.submit([&](unsigned) {
      for (std::uint64_t i = 0; i < kPerTask; ++i) {
        h.record(i & 0xFF);
        c.add(1);
      }
    });
  }
  // Snapshot while the writers run: every intermediate view must be
  // internally consistent (never more sum than count * max allows, and
  // monotone counts). TSan verifies the absence of data races.
  std::uint64_t last_count = 0;
  for (int i = 0; i < 100; ++i) {
    const auto snap = h.snapshot();
    EXPECT_GE(snap.count, last_count);
    last_count = snap.count;
    if (snap.count > 0) {
      EXPECT_LE(snap.min, snap.max);
      EXPECT_LE(snap.max, 0xFFu);
    }
  }
  pool.wait_idle();
  EXPECT_EQ(h.snapshot().count, kPerTask * kWriters);
  EXPECT_EQ(c.value(), kPerTask * kWriters);
}

class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Trace::set_enabled(true);
    obs::Trace::clear();
  }
  void TearDown() override {
    obs::Trace::set_enabled(false);
    obs::Trace::clear();
  }
};

TEST_F(ObsTraceTest, SpansRecordEventsWithThreadTags) {
  {
    obs::Span outer("test.outer");
    obs::Span inner("test.inner");
  }
  const auto events = obs::Trace::events();
  ASSERT_EQ(events.size(), 2u);
  // Destruction order: inner ends first.
  EXPECT_STREQ(events[0].name, "test.inner");
  EXPECT_STREQ(events[1].name, "test.outer");
  EXPECT_EQ(events[0].tid, current_thread_tag());
  EXPECT_GE(events[1].dur_us, events[0].dur_us);
}

TEST_F(ObsTraceTest, EndIsIdempotent) {
  obs::Span span("test.once");
  span.end();
  span.end();
  EXPECT_EQ(obs::Trace::event_count(), 1u);
}

TEST_F(ObsTraceTest, WorkerSpansCarryDistinctTids) {
  constexpr unsigned kWorkers = 4;
  ThreadPool pool(kWorkers);
  // Rendezvous: each task waits until every task has started, so all four
  // workers must participate (a single worker can't run two at once).
  std::atomic<unsigned> started{0};
  for (unsigned t = 0; t < kWorkers; ++t) {
    pool.submit([&started](unsigned) {
      obs::Span span("test.worker");
      started.fetch_add(1);
      while (started.load() < kWorkers) std::this_thread::yield();
    });
  }
  pool.wait_idle();
  const auto events = obs::Trace::events();
  ASSERT_EQ(events.size(), kWorkers);
  std::vector<unsigned> tids;
  for (const auto& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), kWorkers);  // one tag per participating worker
}

TEST_F(ObsTraceTest, ChromeTraceJsonShape) {
  { obs::Span span("test.export"); }
  std::ostringstream out;
  obs::Trace::write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"test.export\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);

  std::ostringstream flame;
  obs::Trace::write_flame_summary(flame);
  EXPECT_NE(flame.str().find("test.export"), std::string::npos);

  obs::Trace::clear();
  EXPECT_EQ(obs::Trace::event_count(), 0u);
}

TEST_F(ObsTraceTest, SpanWithHistogramRecordsDuration) {
  obs::Metrics::set_enabled(true);
  auto& h = obs::Registry::instance().histogram("test.span_us");
  h.reset();
  {
    obs::Span span("test.timed", &h);
  }
  EXPECT_EQ(h.snapshot().count, 1u);
  h.reset();
  obs::Metrics::set_enabled(false);
}

TEST(ObsProgressTest, DisabledMeterWritesNothing) {
  obs::ProgressMeter meter("quiet", 100);
  meter.add(50);
  EXPECT_EQ(meter.done(), 0u);  // dormant add is dropped
}

TEST(ObsProgressTest, EnabledMeterReportsRateAndAux) {
  std::ostringstream out;
  obs::Progress::enable(&out, 0);  // interval 0: report on every add
  {
    obs::ProgressMeter meter("work", 800);
    meter.aux("frontier", 42);
    meter.add(200);
    meter.add(600);
  }
  obs::Progress::disable();
  const std::string text = out.str();
  EXPECT_NE(text.find("[progress] work:"), std::string::npos);
  EXPECT_NE(text.find("800/800 (100.0%)"), std::string::npos);
  EXPECT_NE(text.find("frontier=42"), std::string::npos);

  // After disable, meters go dormant again.
  obs::ProgressMeter after("post", 10);
  after.add(10);
  EXPECT_EQ(after.done(), 0u);
}

TEST(ObsJsonTest, WriterEscapesAndNests) {
  std::string out;
  obs::JsonWriter w(&out);
  w.begin_object();
  w.key("s");
  w.value(std::string_view("a\"b\\c\n"));
  w.key("n");
  w.value(std::uint64_t{42});
  w.key("list");
  w.begin_array();
  w.value(true);
  w.null();
  w.end_array();
  w.end_object();
  EXPECT_EQ(out, "{\"s\":\"a\\\"b\\\\c\\n\",\"n\":42,\"list\":[true,null]}");
}

TEST(ObsReportTest, RunReportContainsSectionsAndMetrics) {
  obs::RunReport report("unit_test", "toy");
  report.add_number("answer", std::uint64_t{42});
  report.add_text("note", "hello");
  report.add("inline", "{\"k\":1}");
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"tool\":\"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"design\":\"toy\""), std::string::npos);
  EXPECT_NE(json.find("\"answer\":42"), std::string::npos);
  EXPECT_NE(json.find("\"note\":\"hello\""), std::string::npos);
  EXPECT_NE(json.find("\"inline\":{\"k\":1}"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":"), std::string::npos);
  EXPECT_NE(json.find("\"started_at\":"), std::string::npos);
  EXPECT_NE(json.find("\"wall_ms\":"), std::string::npos);
}

TEST(ObsReportTest, StatsAndReportsSerialize) {
  const auto stats = summarize({1.0, 2.0, 3.0});
  const std::string json = obs::to_json(stats);
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"mean\":2"), std::string::npos);

  ClosureReport closure;
  closure.closed = true;
  closure.states_checked = 7;
  const std::string cjson = obs::to_json(closure);
  EXPECT_NE(cjson.find("\"closed\":true"), std::string::npos);
  EXPECT_NE(cjson.find("\"states_checked\":7"), std::string::npos);
}

TEST(LogPrefixTest, DefaultFormatUnchanged) {
  std::ostringstream out;
  Log::set_sink(&out);
  Log::set_level(LogLevel::kInfo);
  NONMASK_INFO() << "plain line";
  Log::set_level(LogLevel::kOff);
  Log::set_sink(nullptr);
  EXPECT_EQ(out.str(), "[INFO ] plain line\n");
}

TEST(LogPrefixTest, OptInPrefixAddsTimestampAndThreadTag) {
  std::ostringstream out;
  Log::set_sink(&out);
  Log::set_level(LogLevel::kInfo);
  Log::set_prefix(true);
  NONMASK_INFO() << "stamped line";
  Log::set_prefix(false);
  Log::set_level(LogLevel::kOff);
  Log::set_sink(nullptr);
  // "[2026-08-06T12:34:56.789Z] [t3] [INFO ] stamped line"
  const std::regex expected(
      R"(\[\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z\] \[t\d+\] )"
      R"(\[INFO \] stamped line\n)");
  EXPECT_TRUE(std::regex_match(out.str(), expected)) << out.str();
}

TEST(LogPrefixTest, ThreadTagsAreStableAndDistinct) {
  const unsigned mine = current_thread_tag();
  EXPECT_EQ(current_thread_tag(), mine);  // stable within a thread
  unsigned other = 0;
  ThreadPool pool(1);
  pool.submit([&other](unsigned) { other = current_thread_tag(); });
  pool.wait_idle();
  EXPECT_NE(other, 0u);
  EXPECT_NE(other, mine);
}

}  // namespace
}  // namespace nonmask
