// E2: the paper's Section 4/6 running example {x != y, x <= z}.
//   - kWriteYZ: out-tree graph, converges (Theorem 1 territory).
//   - kWriteXBoth: both actions write x; livelocks — the exact checker
//     exhibits the oscillation the paper describes ("executing one can
//     violate the constraint of the other, and so on").
//   - kDecreaseX: the paper's fix; converges, and every computation of the
//     two convergence actions is finite.
#include <gtest/gtest.h>

#include "checker/closure_check.hpp"
#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "checker/variant.hpp"
#include "engine/simulator.hpp"
#include "protocols/running_example.hpp"
#include "sched/daemons.hpp"

namespace nonmask {
namespace {

TEST(RunningExampleTest, WriteYZConvergesFromEveryState) {
  const Design d = make_running_example(RunningExampleVariant::kWriteYZ);
  StateSpace space(d.program);
  const auto report = check_convergence(space, d.S(), d.T());
  EXPECT_EQ(report.verdict, ConvergenceVerdict::kConverges);
  // Each constraint is fixed at most once: worst case two steps.
  EXPECT_LE(report.max_steps_to_S, 2u);
}

TEST(RunningExampleTest, WriteYZInvariantClosed) {
  const Design d = make_running_example(RunningExampleVariant::kWriteYZ);
  StateSpace space(d.program);
  EXPECT_TRUE(check_closed(space, d.S()).closed);
}

TEST(RunningExampleTest, WriteXBothLivelocks) {
  const Design d = make_running_example(RunningExampleVariant::kWriteXBoth);
  StateSpace space(d.program);
  const auto report = check_convergence(space, d.S(), d.T());
  EXPECT_EQ(report.verdict, ConvergenceVerdict::kViolated);
  ASSERT_TRUE(report.cycle.has_value());
  // The cycle states all violate S.
  const auto S = d.S();
  for (const State& s : *report.cycle) {
    EXPECT_FALSE(S(s));
  }
}

TEST(RunningExampleTest, DecreaseXConvergesFromEveryState) {
  const Design d = make_running_example(RunningExampleVariant::kDecreaseX);
  StateSpace space(d.program);
  const auto report = check_convergence(space, d.S(), d.T());
  EXPECT_EQ(report.verdict, ConvergenceVerdict::kConverges);
  EXPECT_TRUE(check_closed(space, d.S()).closed);
}

TEST(RunningExampleTest, DecreaseXHasVariantFunction) {
  const Design d = make_running_example(RunningExampleVariant::kDecreaseX);
  StateSpace space(d.program);
  const auto variant = compute_variant(space, d.S());
  ASSERT_TRUE(variant.has_value());
  EXPECT_GT(variant->max_value(), 0u);
}

TEST(RunningExampleTest, WriteXBothHasNoVariantFunction) {
  const Design d = make_running_example(RunningExampleVariant::kWriteXBoth);
  StateSpace space(d.program);
  EXPECT_FALSE(compute_variant(space, d.S()).has_value());
}

TEST(RunningExampleTest, ConvergenceActionsEstablishTheirConstraints) {
  for (auto variant :
       {RunningExampleVariant::kWriteYZ, RunningExampleVariant::kWriteXBoth,
        RunningExampleVariant::kDecreaseX}) {
    const Design d = make_running_example(variant);
    StateSpace space(d.program);
    State s(d.program.num_variables());
    for (std::uint64_t code = 0; code < space.size(); ++code) {
      space.decode_into(code, s);
      for (const auto& a : d.program.actions()) {
        if (a.kind() != ActionKind::kConvergence || !a.enabled(s)) continue;
        const auto& c = d.invariant.at(
            static_cast<std::size_t>(a.constraint_id()));
        EXPECT_FALSE(c.holds(s)) << to_string(variant) << ": guard of '"
                                 << a.name() << "' overlaps its constraint";
        EXPECT_TRUE(c.holds(a.apply(s)))
            << to_string(variant) << ": '" << a.name()
            << "' fails to establish its constraint";
      }
    }
  }
}

TEST(RunningExampleTest, SimulationMatchesChecker) {
  // kDecreaseX converges under every daemon; kWriteXBoth exhausts under an
  // adversarial daemon started at a livelock state (y == z).
  const Design good = make_running_example(RunningExampleVariant::kDecreaseX);
  RandomDaemon rd(11);
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const auto r = converge(good, good.program.random_state(rng), rd);
    EXPECT_TRUE(r.converged);
  }

  const Design bad = make_running_example(RunningExampleVariant::kWriteXBoth);
  AdversarialDaemon ad(bad.invariant, 3);
  State start(bad.program.num_variables());
  start.set(bad.program.find_variable("x"), 4);
  start.set(bad.program.find_variable("y"), 4);
  start.set(bad.program.find_variable("z"), 4);
  RunOptions opts;
  opts.max_steps = 1000;
  const auto r = converge(bad, start, ad, opts);
  EXPECT_TRUE(r.exhausted);
}

TEST(RunningExampleTest, DomainValidation) {
  EXPECT_THROW(make_running_example(RunningExampleVariant::kWriteYZ, 3, 3),
               std::invalid_argument);
  // Small domains still work.
  const Design d =
      make_running_example(RunningExampleVariant::kDecreaseX, 0, 1);
  StateSpace space(d.program);
  EXPECT_EQ(check_convergence(space, d.S(), d.T()).verdict,
            ConvergenceVerdict::kConverges);
}

}  // namespace
}  // namespace nonmask
