// The protocol × daemon simulation matrix: every shipped stabilizing
// design must converge from random corruption under every daemon that is
// fair enough for it. Fairness-needing designs (distributed reset, the
// message-passing ring) are exercised only under (probabilistically or
// structurally) fair daemons.
#include <gtest/gtest.h>

#include <memory>

#include "engine/simulator.hpp"
#include "msg/mp_diffusing.hpp"
#include "msg/mp_token_ring.hpp"
#include "protocols/aggregation.hpp"
#include "protocols/coloring.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/distributed_reset.hpp"
#include "protocols/independent_set.hpp"
#include "protocols/leader_election.hpp"
#include "protocols/matching.hpp"
#include "protocols/running_example.hpp"
#include "protocols/spanning_tree.hpp"
#include "protocols/token_ring.hpp"
#include "protocols/token_ring_small.hpp"
#include "sched/daemons.hpp"

namespace nonmask {
namespace {

struct MatrixEntry {
  Design design;
  bool needs_fairness;
};

std::vector<MatrixEntry> matrix() {
  std::vector<MatrixEntry> out;
  Rng rng(2026);
  out.push_back({make_running_example(RunningExampleVariant::kWriteYZ), false});
  out.push_back(
      {make_running_example(RunningExampleVariant::kDecreaseX), false});
  out.push_back({make_diffusing(RootedTree::random(20, rng), true).design,
                 false});
  out.push_back({make_dijkstra_ring(16, 17).design, false});
  out.push_back({make_token_ring_bounded(8, 7, true).design, false});
  out.push_back({make_dijkstra_three_state(8).design, false});
  out.push_back({make_dijkstra_four_state(8).design, false});
  out.push_back(
      {make_spanning_tree(UndirectedGraph::random_connected(15, 10, rng))
           .design,
       false});
  out.push_back(
      {make_coloring(UndirectedGraph::random_connected(15, 20, rng)).design,
       false});
  out.push_back(
      {make_matching(UndirectedGraph::random_connected(12, 8, rng)).design,
       false});
  out.push_back(
      {make_independent_set(UndirectedGraph::random_connected(12, 14, rng))
           .design,
       false});
  out.push_back({make_leader_election(12).design, false});
  out.push_back({make_aggregation(RootedTree::random(12, rng), 7).design,
                 false});
  out.push_back(
      {make_distributed_reset(RootedTree::random(10, rng), 4).design, true});
  out.push_back({make_mp_token_ring(6, 13).design, true});
  out.push_back({make_mp_diffusing(RootedTree::random(8, rng)).design, true});
  return out;
}

enum DaemonKind {
  kRandom,
  kRoundRobin,
  kFirstEnabled,
  kAdversarial,
  kDistributed,
  kWeaklyFair,
};

DaemonPtr make(DaemonKind kind, const Design& d, std::uint64_t seed) {
  switch (kind) {
    case kRandom: return std::make_unique<RandomDaemon>(seed);
    case kRoundRobin: return std::make_unique<RoundRobinDaemon>();
    case kFirstEnabled: return std::make_unique<FirstEnabledDaemon>();
    case kAdversarial:
      return std::make_unique<AdversarialDaemon>(d.invariant, seed);
    case kDistributed:
      return std::make_unique<DistributedDaemon>(0.4, seed);
    case kWeaklyFair:
      return std::make_unique<WeaklyFairDaemon>(
          std::make_unique<RandomDaemon>(seed), 24);
  }
  return std::make_unique<RandomDaemon>(seed);
}

bool is_fair_enough(DaemonKind kind) {
  // Unfair daemons for fairness-needing designs are exercised elsewhere
  // (they legitimately diverge there).
  return kind == kRandom || kind == kRoundRobin || kind == kWeaklyFair;
}

class MatrixTest : public ::testing::TestWithParam<int> {};

TEST_P(MatrixTest, ConvergesFromRandomCorruption) {
  const auto kind = static_cast<DaemonKind>(GetParam());
  Rng start_rng(31337 + static_cast<std::uint64_t>(GetParam()));
  for (auto& entry : matrix()) {
    if (entry.needs_fairness && !is_fair_enough(kind)) continue;
    auto daemon = make(kind, entry.design, 7);
    for (int trial = 0; trial < 3; ++trial) {
      RunOptions opts;
      opts.max_steps = 500'000;
      const auto r =
          converge(entry.design,
                   entry.design.program.random_state(start_rng), *daemon,
                   opts);
      EXPECT_TRUE(r.converged)
          << entry.design.name << " under daemon " << GetParam() << " trial "
          << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDaemons, MatrixTest, ::testing::Range(0, 6),
    [](const ::testing::TestParamInfo<int>& info) {
      switch (static_cast<DaemonKind>(info.param)) {
        case kRandom: return "random";
        case kRoundRobin: return "round_robin";
        case kFirstEnabled: return "first_enabled";
        case kAdversarial: return "adversarial";
        case kDistributed: return "distributed";
        case kWeaklyFair: return "weakly_fair";
      }
      return "unknown";
    });

}  // namespace
}  // namespace nonmask
