// Unit tests for composable fault schedules.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/builder.hpp"
#include "faults/fault.hpp"
#include "faults/schedule.hpp"
#include "resilience/adversary.hpp"

namespace nonmask {
namespace {

Program two_var_program() {
  ProgramBuilder b("sched");
  b.var("x", 0, 9, 0);
  b.var("y", 0, 9, 1);
  return b.build();
}

FaultModelPtr set_var(VarId v, Value value) {
  return std::make_shared<TargetedCorruption>(std::vector<VarId>{v},
                                              std::vector<Value>{value});
}

std::vector<std::size_t> steps_of(const FaultSchedule& s) {
  std::vector<std::size_t> steps;
  for (const auto& strike : s.strikes()) steps.push_back(strike.step);
  return steps;
}

TEST(FaultScheduleTest, AtBurstSustainedShapes) {
  Program p = two_var_program();
  const VarId x = p.find_variable("x");
  const auto m = set_var(x, 1);

  const auto one = FaultSchedule::at(m, 5);
  EXPECT_EQ(steps_of(one), (std::vector<std::size_t>{5}));
  EXPECT_EQ(one.last_step(), 5u);

  const auto b = FaultSchedule::burst(m, 2, 3);
  EXPECT_EQ(steps_of(b), (std::vector<std::size_t>{2, 3, 4}));

  const auto s = FaultSchedule::sustained(m, 1, 3, 3);
  EXPECT_EQ(steps_of(s), (std::vector<std::size_t>{1, 4, 7}));

  // Period 0 degenerates to a burst.
  const auto s0 = FaultSchedule::sustained(m, 0, 0, 2);
  EXPECT_EQ(steps_of(s0), (std::vector<std::size_t>{0, 1}));

  EXPECT_TRUE(FaultSchedule().empty());
  EXPECT_EQ(FaultSchedule().last_step(), 0u);
}

TEST(FaultScheduleTest, ComposeSortsByStepKeepingCompositionOrder) {
  Program p = two_var_program();
  const VarId x = p.find_variable("x");
  const auto composed = FaultSchedule::compose(
      {FaultSchedule::at(set_var(x, 7), 4), FaultSchedule::at(set_var(x, 2), 1),
       FaultSchedule::at(set_var(x, 9), 4)});
  EXPECT_EQ(steps_of(composed), (std::vector<std::size_t>{1, 4, 4}));

  // Both step-4 strikes hit x; composition order makes the later part win.
  State s = p.initial_state();
  Rng rng(1);
  composed.apply(4, p, s, rng);
  EXPECT_EQ(s.get(x), 9);
}

TEST(FaultScheduleTest, ThenSequencesAfterLastStrike) {
  Program p = two_var_program();
  const VarId x = p.find_variable("x");
  const auto m = set_var(x, 1);

  const auto first = FaultSchedule::burst(m, 0, 3);    // steps 0,1,2
  const auto second = FaultSchedule::burst(m, 0, 2);   // steps 0,1
  const auto seq = first.then(second, 2);              // shift by 2+2
  EXPECT_EQ(steps_of(seq), (std::vector<std::size_t>{0, 1, 2, 4, 5}));

  // An empty receiver sequences to `next` unshifted.
  EXPECT_EQ(steps_of(FaultSchedule().then(second, 5)),
            (std::vector<std::size_t>{0, 1}));
}

TEST(FaultScheduleTest, ThenDoesNotDoubleShiftNonzeroStarts) {
  // Regression: FaultPlacement::schedule() yields one-strike plans starting
  // at a *nonzero* step. then() must land the next plan's first strike
  // exactly `gap` after the receiver's last strike — under the old
  // shift-by-last+gap rule, a placement at step 5 chained after one at
  // step 3 with gap 2 would land at 3+2+5 = 10 instead of 5.
  Program p = two_var_program();
  const VarId x = p.find_variable("x");
  const VarId y = p.find_variable("y");
  FaultPlacement first;
  first.targets = {x};
  first.values = {5};
  first.at_step = 3;
  FaultPlacement second;
  second.targets = {y};
  second.values = {6};
  second.at_step = 5;
  const auto seq = first.schedule().then(second.schedule(), 2);
  EXPECT_EQ(steps_of(seq), (std::vector<std::size_t>{3, 5}));

  // Chaining again still lands gap steps after the (new) last strike.
  FaultPlacement third = first;
  third.at_step = 4;
  EXPECT_EQ(steps_of(seq.then(third.schedule(), 3)),
            (std::vector<std::size_t>{3, 5, 8}));
}

TEST(FaultScheduleTest, PersistentActorStrikesEveryStep) {
  Program p = two_var_program();
  const VarId x = p.find_variable("x");
  const auto sched = FaultSchedule::persistent(set_var(x, 7));
  EXPECT_FALSE(sched.empty());
  EXPECT_EQ(sched.size(), 0u);  // no step-scheduled strikes
  State s = p.initial_state();
  Rng rng(1);
  for (std::size_t step : {0u, 1u, 17u}) {
    s.set(x, 0);
    sched.apply(step, p, s, rng);
    EXPECT_EQ(s.get(x), 7);
  }
}

TEST(FaultScheduleTest, PersistentActorsSurviveThenAndCompose) {
  Program p = two_var_program();
  const VarId x = p.find_variable("x");
  const VarId y = p.find_variable("y");
  const auto seq = FaultSchedule::persistent(set_var(x, 7))
                       .then(FaultSchedule::at(set_var(y, 6), 4), 2);
  EXPECT_EQ(seq.persistent_actors().size(), 1u);
  // An actor-only receiver has no strikes, so `next` lands unshifted.
  EXPECT_EQ(steps_of(seq), (std::vector<std::size_t>{4}));

  State s = p.initial_state();
  Rng rng(1);
  seq.apply(0, p, s, rng);  // actor fires even off the strike plan
  EXPECT_EQ(s.get(x), 7);
  EXPECT_NE(s.get(y), 6);
  seq.apply(4, p, s, rng);
  EXPECT_EQ(s.get(y), 6);
}

TEST(FaultScheduleTest, ApplyOnlyStrikesTheGivenStep) {
  Program p = two_var_program();
  const VarId x = p.find_variable("x");
  const VarId y = p.find_variable("y");
  const auto sched = FaultSchedule::compose(
      {FaultSchedule::at(set_var(x, 5), 3), FaultSchedule::at(set_var(y, 6), 8)});
  State s = p.initial_state();
  Rng rng(1);
  sched.apply(3, p, s, rng);
  EXPECT_EQ(s.get(x), 5);
  EXPECT_NE(s.get(y), 6);
  sched.apply(4, p, s, rng);  // no strike at 4: no change
  EXPECT_EQ(s.get(x), 5);
  EXPECT_NE(s.get(y), 6);
}

TEST(FaultScheduleTest, HookIsDeterministicAndFiresMissedSteps) {
  Program p = two_var_program();
  const auto model = std::make_shared<CorruptKVariables>(1);
  const auto sched = FaultSchedule::sustained(model, 2, 2, 4);

  auto run = [&](std::uint64_t seed) {
    auto hook = sched.hook(p, seed);
    State s = p.initial_state();
    // Step past some scheduled steps (the engine only guarantees
    // monotonically increasing steps, not contiguity).
    for (std::size_t step : {0u, 2u, 5u, 9u}) hook(step, s);
    return s;
  };
  const State a = run(11);
  const State b = run(11);
  for (std::uint32_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.get(VarId(i)), b.get(VarId(i)));
  }
}

TEST(FaultScheduleTest, HookOutlivesSchedule) {
  Program p = two_var_program();
  const VarId x = p.find_variable("x");
  std::function<void(std::size_t, State&)> hook;
  {
    const auto sched = FaultSchedule::at(set_var(x, 8), 0);
    hook = sched.hook(p, 1);
  }  // schedule destroyed; the hook owns its own copy of the strikes
  State s = p.initial_state();
  hook(0, s);
  EXPECT_EQ(s.get(x), 8);
}

}  // namespace
}  // namespace nonmask
