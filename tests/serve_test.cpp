// The verification service: HTTP protocol plumbing, the job manager's
// queue/backpressure/drain lifecycle, concurrent submissions (TSan-able),
// crash-recovery via recover(), and checkpoint-resume byte-identity of a
// resumed campaign's report.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/http.hpp"
#include "serve/jobs.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"

namespace nonmask {
namespace {

using serve::HttpRequest;
using serve::HttpResponse;
using serve::HttpServer;
using serve::JobInfo;
using serve::JobManager;
using serve::JobState;
using serve::ServeOptions;
using serve::make_handler;

// --- tiny blocking HTTP client (tests only) -------------------------------

struct ClientResponse {
  int status = 0;
  std::string body;
};

ClientResponse http_request(int port, const std::string& method,
                            const std::string& target,
                            const std::string& body = "") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  std::string req = method + " " + target + " HTTP/1.1\r\n" +
                    "Host: 127.0.0.1\r\n" +
                    "Content-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n" + body;
  std::size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  ClientResponse out;
  if (raw.rfind("HTTP/1.1 ", 0) == 0) {
    out.status = std::atoi(raw.c_str() + 9);
  }
  const std::size_t split = raw.find("\r\n\r\n");
  if (split != std::string::npos) out.body = raw.substr(split + 4);
  return out;
}

std::string fresh_dir(const std::string& tag) {
  const std::string dir =
      testing::TempDir() + "nonmask_serve_" + tag + "_" +
      std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

// A converging one-variable design with a fast campaign job.
std::string campaign_spec(int trials, int seed) {
  return std::string(R"({
  "schema": "nonmask-spec/1",
  "name": "countdown",
  "variables": [{"name": "x", "min": "0", "max": "7"}],
  "constraints": [{"name": "zero", "expr": "x == 0"}],
  "actions": [
    {"name": "step", "kind": "convergence", "guard": "x > 0",
     "assign": {"x": "x - 1"}, "constraint": "0"}
  ],
  "job": {"type": "campaign", "trials": )") +
         std::to_string(trials) + ", \"seed\": " + std::to_string(seed) +
         ", \"max_steps\": 1000}\n}";
}

std::string check_spec() {
  return R"({
  "schema": "nonmask-spec/1",
  "name": "countdown",
  "variables": [{"name": "x", "min": "0", "max": "7"}],
  "constraints": [{"name": "zero", "expr": "x == 0"}],
  "actions": [
    {"name": "step", "kind": "convergence", "guard": "x > 0",
     "assign": {"x": "x - 1"}, "constraint": "0"}
  ],
  "job": {"type": "check"}
})";
}

// A campaign that never converges: every trial burns max_steps, so the job
// occupies its worker long enough to test backpressure deterministically.
std::string slow_spec() {
  return R"({
  "schema": "nonmask-spec/1",
  "name": "spinner",
  "variables": [{"name": "x", "min": "0", "max": "3"}],
  "constraints": [{"name": "zero", "expr": "x == 99"}],
  "actions": [
    {"name": "spin", "kind": "convergence", "guard": "1",
     "assign": {"x": "(x + 1) % 4"}, "constraint": "0"}
  ],
  "job": {"type": "campaign", "trials": 8, "max_steps": 400000}
})";
}

JobInfo wait_done(JobManager& mgr, const std::string& id,
                  int timeout_ms = 30000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const auto info = mgr.info(id);
    if (info &&
        (info->state == JobState::kDone || info->state == JobState::kFailed)) {
      return *info;
    }
    if (std::chrono::steady_clock::now() > deadline) {
      ADD_FAILURE() << "job " << id << " did not finish";
      return info ? *info : JobInfo{};
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

/// Drop the fields that legitimately differ between two runs of the same
/// job (timestamps, durations, process-global metrics).
std::string strip_volatile(const std::string& report) {
  util::JsonValue doc = util::parse_json(report);
  std::vector<std::pair<std::string, util::JsonValue>> kept;
  for (auto& [k, v] : doc.object) {
    if (k == "started_at" || k == "wall_ms" || k == "metrics") continue;
    kept.emplace_back(k, std::move(v));
  }
  doc.object = std::move(kept);
  return util::dump_json(doc);
}

// --- HTTP layer -----------------------------------------------------------

TEST(HttpServerTest, ServesAndShutsDown) {
  HttpServer server(0);
  ASSERT_GT(server.port(), 0);
  std::thread t([&] {
    server.serve_forever([](const HttpRequest& req) {
      HttpResponse resp;
      resp.body = req.method + " " + req.target + " q=" + req.query +
                  " len=" + std::to_string(req.body.size());
      return resp;
    });
  });
  auto r = http_request(server.port(), "GET", "/echo?a=1");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "GET /echo q=a=1 len=0");
  r = http_request(server.port(), "POST", "/data", "hello");
  EXPECT_EQ(r.body, "POST /data q= len=5");
  server.shutdown();
  t.join();
}

TEST(HttpServerTest, HandlerExceptionsBecome500) {
  HttpServer server(0);
  std::thread t([&] {
    server.serve_forever([](const HttpRequest&) -> HttpResponse {
      throw std::runtime_error("boom");
    });
  });
  const auto r = http_request(server.port(), "GET", "/");
  EXPECT_EQ(r.status, 500);
  EXPECT_NE(r.body.find("boom"), std::string::npos);
  server.shutdown();
  t.join();
}

TEST(HttpServerTest, SilentClientTimesOutWith408AndLoopKeepsServing) {
  HttpServer server(0);
  server.set_io_timeout(1);
  std::thread t([&] {
    server.serve_forever([](const HttpRequest&) { return HttpResponse{}; });
  });
  // Connect and send nothing: the accept loop must answer 408 and move on
  // instead of blocking in recv() forever.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string raw;
  char buf[512];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(raw.rfind("HTTP/1.1 408", 0), 0u) << raw;
  // The stalled connection did not wedge the service.
  EXPECT_EQ(http_request(server.port(), "GET", "/").status, 200);
  server.shutdown();
  t.join();
}

TEST(HttpServerTest, ClientDisconnectBeforeResponseDoesNotKillServer) {
  HttpServer server(0);
  std::thread t([&] {
    server.serve_forever([](const HttpRequest&) {
      // Give the peer time to vanish, then answer with a body large enough
      // that send() runs after the RST lands — the EPIPE/SIGPIPE path.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      HttpResponse resp;
      resp.body.assign(1 << 20, 'x');
      return resp;
    });
  });
  for (int i = 0; i < 4; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    const std::string req =
        "GET /big HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n";
    ::send(fd, req.data(), req.size(), 0);
    ::close(fd);  // hang up before the response is written
  }
  // A SIGPIPE would have terminated the whole process; instead the server
  // is still here and serving.
  EXPECT_EQ(http_request(server.port(), "GET", "/after").status, 200);
  server.shutdown();
  t.join();
}

// --- job manager lifecycle ------------------------------------------------

TEST(JobManagerTest, RunsCheckJobToCompletion) {
  ServeOptions opts;
  opts.state_dir = fresh_dir("check");
  JobManager mgr(opts);
  const auto sub = mgr.submit(check_spec());
  ASSERT_EQ(sub.status, 201);
  EXPECT_EQ(sub.id, "job-000001");
  const JobInfo info = wait_done(mgr, sub.id);
  EXPECT_EQ(info.state, JobState::kDone);
  EXPECT_TRUE(info.ok);
  EXPECT_EQ(info.type, "check");
  EXPECT_EQ(info.design, "countdown");
  const std::string report = mgr.report_json(sub.id);
  ASSERT_FALSE(report.empty());
  const util::JsonValue doc = util::parse_json(report);
  ASSERT_NE(doc.find("spec"), nullptr);
  EXPECT_EQ(doc.find("spec")->find("name")->string_value, "countdown");
  ASSERT_NE(doc.find("convergence"), nullptr);
  mgr.drain();
}

TEST(JobManagerTest, RejectsInvalidSpecsWith422) {
  ServeOptions opts;
  opts.state_dir = fresh_dir("invalid");
  JobManager mgr(opts);
  EXPECT_EQ(mgr.submit("this is not json").status, 422);
  EXPECT_EQ(mgr.submit("{\"schema\": \"nonmask-spec/1\"}").status, 422);
  // Nothing was persisted for rejected submissions.
  EXPECT_TRUE(mgr.list().empty());
  mgr.drain();
}

TEST(JobManagerTest, BackpressureAndDrainRejection) {
  ServeOptions opts;
  opts.state_dir = fresh_dir("backpressure");
  opts.workers = 1;
  opts.max_queue = 1;
  JobManager mgr(opts);
  // Occupy the single worker, give it time to dequeue, then fill the queue.
  ASSERT_EQ(mgr.submit(slow_spec()).status, 201);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(mgr.submit(check_spec()).status, 201);  // queued (1/1)
  EXPECT_EQ(mgr.submit(check_spec()).status, 429);  // queue full
  mgr.drain();
  EXPECT_EQ(mgr.submit(check_spec()).status, 503);  // draining
  EXPECT_EQ(mgr.pending(), 0u);
}

TEST(JobManagerTest, ConcurrentSubmissionsAllComplete) {
  ServeOptions opts;
  opts.state_dir = fresh_dir("concurrent");
  opts.workers = 4;
  JobManager mgr(opts);
  std::vector<std::thread> threads;
  std::vector<std::string> ids(8);
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2; ++i) {
        const auto sub = mgr.submit(campaign_spec(10, 100 + t * 2 + i));
        if (sub.status != 201) {
          ++failures;
        } else {
          ids[static_cast<std::size_t>(t * 2 + i)] = sub.id;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  for (const auto& id : ids) {
    ASSERT_FALSE(id.empty());
    const JobInfo info = wait_done(mgr, id);
    EXPECT_EQ(info.state, JobState::kDone);
    EXPECT_TRUE(info.ok) << info.summary;
  }
  EXPECT_EQ(mgr.list().size(), 8u);
  mgr.drain();
}

// --- crash recovery + checkpoint resume -----------------------------------

TEST(JobManagerTest, RecoverReenqueuesPersistedSpecs) {
  const std::string dir = fresh_dir("recover");
  std::string id;
  std::string baseline;
  {
    ServeOptions opts;
    opts.state_dir = dir;
    JobManager mgr(opts);
    const auto sub = mgr.submit(campaign_spec(30, 7));
    ASSERT_EQ(sub.status, 201);
    id = sub.id;
    const JobInfo info = wait_done(mgr, id);
    ASSERT_EQ(info.state, JobState::kDone);
    baseline = mgr.report_json(id);
    ASSERT_FALSE(baseline.empty());
    mgr.drain();
  }

  // Simulate a crash after the checkpoint was written but before the
  // report landed: delete the report, keep spec + checkpoint journal.
  ASSERT_TRUE(std::filesystem::remove(dir + "/" + id + ".report.json"));
  ASSERT_TRUE(std::filesystem::exists(dir + "/" + id + ".checkpoint.jsonl"));

  ServeOptions opts;
  opts.state_dir = dir;
  JobManager mgr(opts);
  ASSERT_EQ(mgr.recover(), 1u);
  const auto info = wait_done(mgr, id);
  EXPECT_EQ(info.state, JobState::kDone);
  EXPECT_TRUE(info.recovered);
  const std::string resumed = mgr.report_json(id);
  ASSERT_FALSE(resumed.empty());
  // The resumed run replays the journal's completed prefix, so its report
  // is byte-identical to the uninterrupted one (modulo timestamps).
  EXPECT_EQ(strip_volatile(resumed), strip_volatile(baseline));
  // New submissions continue past the recovered id.
  const auto sub = mgr.submit(check_spec());
  ASSERT_EQ(sub.status, 201);
  EXPECT_EQ(sub.id, "job-000002");
  wait_done(mgr, sub.id);
  mgr.drain();
}

// --- the full HTTP surface ------------------------------------------------

TEST(ServeRoutesTest, EndToEndSubmitPollReport) {
  ServeOptions opts;
  opts.state_dir = fresh_dir("routes");
  opts.workers = 2;
  JobManager mgr(opts);
  HttpServer server(0);
  std::thread t([&] { server.serve_forever(make_handler(mgr)); });

  auto health = http_request(server.port(), "GET", "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"status\": \"ok\""), std::string::npos);

  // Submission errors surface as HTTP statuses.
  EXPECT_EQ(http_request(server.port(), "POST", "/jobs", "{oops").status, 422);
  EXPECT_EQ(http_request(server.port(), "DELETE", "/jobs").status, 405);
  EXPECT_EQ(http_request(server.port(), "GET", "/jobs/job-000099").status,
            404);
  EXPECT_EQ(http_request(server.port(), "GET", "/nowhere").status, 404);

  const auto posted =
      http_request(server.port(), "POST", "/jobs", campaign_spec(20, 3));
  ASSERT_EQ(posted.status, 201);
  const util::JsonValue ack = util::parse_json(posted.body);
  ASSERT_NE(ack.find("id"), nullptr);
  const std::string id = ack.find("id")->string_value;
  EXPECT_EQ(ack.find("location")->string_value, "/jobs/" + id);

  // Poll the status endpoint until the job lands.
  std::string state;
  for (int i = 0; i < 2000 && state != "done" && state != "failed"; ++i) {
    const auto status = http_request(server.port(), "GET", "/jobs/" + id);
    EXPECT_EQ(status.status, 200);
    state = util::parse_json(status.body).find("state")->string_value;
    if (state != "done") {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_EQ(state, "done");

  const auto report = http_request(server.port(), "GET",
                                   "/jobs/" + id + "/report");
  ASSERT_EQ(report.status, 200);
  // The served report is exactly the manager's artifact...
  EXPECT_EQ(report.body, mgr.report_json(id));
  // ...and carries the spec provenance block.
  const util::JsonValue doc = util::parse_json(report.body);
  ASSERT_NE(doc.find("spec"), nullptr);
  EXPECT_NE(doc.find("spec")->find("content_hash"), nullptr);

  // The jobs index lists it.
  const auto listing = http_request(server.port(), "GET", "/jobs");
  EXPECT_NE(listing.body.find(id), std::string::npos);

  server.shutdown();
  t.join();
  mgr.drain();
}

TEST(ServeRoutesTest, ReportBeforeCompletionIs404) {
  ServeOptions opts;
  opts.state_dir = fresh_dir("notready");
  opts.workers = 1;
  opts.max_queue = 4;
  JobManager mgr(opts);
  HttpServer server(0);
  std::thread t([&] { server.serve_forever(make_handler(mgr)); });
  // Occupy the worker so the next job stays queued.
  ASSERT_EQ(mgr.submit(slow_spec()).status, 201);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto posted =
      http_request(server.port(), "POST", "/jobs", check_spec());
  ASSERT_EQ(posted.status, 201);
  const std::string id = util::parse_json(posted.body).find("id")->string_value;
  const auto report =
      http_request(server.port(), "GET", "/jobs/" + id + "/report");
  EXPECT_EQ(report.status, 404);
  EXPECT_NE(report.body.find("report not ready"), std::string::npos);
  server.shutdown();
  t.join();
  mgr.drain();
}

}  // namespace
}  // namespace nonmask
