// Tests for the parallel verification & campaign subsystem: the thread
// pool primitive, parallel-vs-serial bit-equivalence of every sweep, the
// campaign runner, and logging thread-safety.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "checker/closure_check.hpp"
#include "checker/convergence_check.hpp"
#include "checker/fault_span.hpp"
#include "checker/state_space.hpp"
#include "engine/experiment.hpp"
#include "parallel/campaign.hpp"
#include "parallel/sweep.hpp"
#include "parallel/thread_pool.hpp"
#include "protocols/coloring.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/running_example.hpp"
#include "protocols/token_ring.hpp"
#include "protocols/token_ring_small.hpp"
#include "util/logging.hpp"

namespace nonmask {
namespace {

// ---------------------------------------------------------------- pool

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_chunked(pool, 0, 1000, 7,
                       [&](std::size_t, std::uint64_t lo, std::uint64_t hi,
                           unsigned) {
                         for (std::uint64_t i = lo; i < hi; ++i) ++hits[i];
                       });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ChunkNumberingMatchesRangeOrder) {
  ThreadPool pool(4);
  std::vector<std::uint64_t> lo_of_chunk(10, ~std::uint64_t{0});
  parallel_for_chunked(pool, 0, 100, 10,
                       [&](std::size_t chunk, std::uint64_t lo, std::uint64_t,
                           unsigned) { lo_of_chunk[chunk] = lo; });
  for (std::size_t c = 0; c < lo_of_chunk.size(); ++c) {
    EXPECT_EQ(lo_of_chunk[c], c * 10);
  }
}

TEST(ThreadPoolTest, EmptyRangeAndOversizedGrain) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for_chunked(pool, 5, 5, 10,
                       [&](std::size_t, std::uint64_t, std::uint64_t,
                           unsigned) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for_chunked(pool, 0, 3, 100,
                       [&](std::size_t chunk, std::uint64_t lo,
                           std::uint64_t hi, unsigned) {
                         ++calls;
                         EXPECT_EQ(chunk, 0u);
                         EXPECT_EQ(lo, 0u);
                         EXPECT_EQ(hi, 3u);
                       });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, PropagatesTaskException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for_chunked(pool, 0, 100, 1,
                           [&](std::size_t chunk, std::uint64_t,
                               std::uint64_t, unsigned) {
                             if (chunk == 42) throw std::runtime_error("boom");
                           }),
      std::runtime_error);
}

TEST(ThreadPoolTest, WorkerIndicesStayInRange) {
  ThreadPool pool(3);
  std::atomic<bool> ok{true};
  parallel_for_chunked(pool, 0, 200, 1,
                       [&](std::size_t, std::uint64_t, std::uint64_t,
                           unsigned worker) {
                         if (worker >= pool.size()) ok = false;
                       });
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPoolTest, EnvOverrideControlsDefaultThreads) {
  setenv("NONMASK_THREADS", "3", 1);
  EXPECT_EQ(default_threads(), 3u);
  unsetenv("NONMASK_THREADS");
  EXPECT_GE(default_threads(), 1u);
}

// ----------------------------------------------------- sweep equivalence

void expect_same_closure(const ClosureReport& a, const ClosureReport& b) {
  EXPECT_EQ(a.closed, b.closed);
  EXPECT_EQ(a.states_checked, b.states_checked);
  EXPECT_EQ(a.transitions_checked, b.transitions_checked);
  ASSERT_EQ(a.violation.has_value(), b.violation.has_value());
  if (a.violation) {
    EXPECT_EQ(a.violation->state, b.violation->state);
    EXPECT_EQ(a.violation->action, b.violation->action);
    EXPECT_EQ(a.violation->successor, b.violation->successor);
  }
}

void expect_same_convergence(const ConvergenceReport& a,
                             const ConvergenceReport& b) {
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.states_in_T, b.states_in_T);
  EXPECT_EQ(a.states_in_S, b.states_in_S);
  EXPECT_EQ(a.region_states, b.region_states);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.max_steps_to_S, b.max_steps_to_S);
  ASSERT_EQ(a.cycle.has_value(), b.cycle.has_value());
  if (a.cycle) {
    EXPECT_EQ(*a.cycle, *b.cycle);
  }
  ASSERT_EQ(a.deadlock.has_value(), b.deadlock.has_value());
  if (a.deadlock) {
    EXPECT_EQ(*a.deadlock, *b.deadlock);
  }
}

SweepOptions sweep_opts(unsigned threads) {
  SweepOptions opts;
  opts.threads = threads;
  opts.grain = 64;  // small grain so several chunks exist even on tiny spaces
  return opts;
}

TEST(SweepTest, ClosureMatchesSerialAcrossThreadCounts) {
  const auto dd = make_diffusing(RootedTree::balanced(7, 2), true);
  StateSpace space(dd.design.program);
  const auto serial = check_closed(space, dd.design.S());
  for (unsigned threads : {1u, 2u, 8u}) {
    expect_same_closure(
        serial,
        check_closed_parallel(space, dd.design.S(), sweep_opts(threads)));
  }
}

TEST(SweepTest, ClosureViolationMatchesSerial) {
  // x != y alone is not closed under the write-x-both variant (fix-leq sets
  // x := z, which can land on y), so the first violating (state, action,
  // successor) triple must match exactly.
  const Design d = make_running_example(RunningExampleVariant::kWriteXBoth);
  StateSpace space(d.program);
  const VarId x = d.program.find_variable("x");
  const VarId y = d.program.find_variable("y");
  const PredicateFn only_first = [x, y](const State& s) {
    return s.get(x) != s.get(y);
  };
  const auto serial = check_closed(space, only_first);
  ASSERT_FALSE(serial.closed);
  for (unsigned threads : {2u, 8u}) {
    expect_same_closure(
        serial, check_closed_parallel(space, only_first, sweep_opts(threads)));
  }
}

TEST(SweepTest, ConvergenceMatchesSerialOnShippedProtocols) {
  struct Case {
    std::string name;
    Design design;
  };
  std::vector<Case> cases;
  cases.push_back({"running-example",
                   make_running_example(RunningExampleVariant::kWriteYZ)});
  cases.push_back(
      {"diffusing", make_diffusing(RootedTree::balanced(7, 2), true).design});
  cases.push_back({"dijkstra-ring", make_dijkstra_ring(4, 5).design});
  cases.push_back(
      {"bounded-ring", make_token_ring_bounded(4, 3, true).design});
  cases.push_back(
      {"three-state-ring", make_dijkstra_three_state(4).design});
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    StateSpace space(c.design.program);
    const auto serial =
        check_convergence(space, c.design.S(), c.design.T());
    for (unsigned threads : {1u, 2u, 8u}) {
      expect_same_convergence(
          serial, check_convergence_parallel(space, c.design.S(),
                                             c.design.T(),
                                             sweep_opts(threads)));
    }
  }
}

TEST(SweepTest, ConvergenceViolationMatchesSerial) {
  // The kWriteXBoth variant livelocks: verdicts and the extracted
  // counterexample must agree.
  const Design d = make_running_example(RunningExampleVariant::kWriteXBoth);
  StateSpace space(d.program);
  const auto serial = check_convergence(space, d.S(), d.T());
  ASSERT_EQ(serial.verdict, ConvergenceVerdict::kViolated);
  for (unsigned threads : {2u, 8u}) {
    expect_same_convergence(
        serial,
        check_convergence_parallel(space, d.S(), d.T(), sweep_opts(threads)));
  }
}

TEST(SweepTest, WeaklyFairMatchesSerial) {
  const auto tr = make_dijkstra_ring(4, 5);
  StateSpace space(tr.design.program);
  const auto serial =
      check_convergence_weakly_fair(space, tr.design.S(), tr.design.T());
  for (unsigned threads : {2u, 8u}) {
    expect_same_convergence(
        serial,
        check_convergence_weakly_fair_parallel(
            space, tr.design.S(), tr.design.T(), sweep_opts(threads)));
  }
}

TEST(SweepTest, FaultSpanMatchesSerial) {
  const auto dd = make_diffusing(RootedTree::chain(6), true);
  StateSpace space(dd.design.program);
  const auto serial = compute_fault_span(space, dd.design.S(), {});
  for (unsigned threads : {2u, 8u}) {
    const auto par = compute_fault_span_parallel(space, dd.design.S(), {},
                                                 {}, sweep_opts(threads));
    EXPECT_EQ(par.size(), serial.size());
    for (std::uint64_t code = 0; code < space.size(); ++code) {
      ASSERT_EQ(par.contains_code(code), serial.contains_code(code))
          << "code " << code;
    }
  }
}

TEST(SweepTest, CappedReachabilityMatchesSerial) {
  const auto dd = make_diffusing(RootedTree::chain(6), true);
  StateSpace space(dd.design.program);
  FaultSpanOptions span_opts;
  span_opts.max_states = 37;  // force mid-BFS truncation
  const auto actions = non_fault_actions(dd.design.program);
  const auto serial =
      compute_reachable(space, dd.design.S(), actions, span_opts);
  for (unsigned threads : {2u, 8u}) {
    const auto par = compute_reachable_parallel(
        space, dd.design.S(), actions, span_opts, sweep_opts(threads));
    EXPECT_EQ(par.size(), serial.size());
    for (std::uint64_t code = 0; code < space.size(); ++code) {
      ASSERT_EQ(par.contains_code(code), serial.contains_code(code))
          << "code " << code;
    }
  }
}

TEST(SweepTest, StateSpaceTooLargeBoundary) {
  const auto dd = make_diffusing(RootedTree::balanced(7, 2), true);
  const auto count = dd.design.program.state_count();
  ASSERT_TRUE(count.has_value());
  // Exactly at budget: constructible and sweepable.
  StateSpace exact(dd.design.program, *count);
  EXPECT_TRUE(
      check_closed_parallel(exact, dd.design.S(), sweep_opts(2)).closed);
  // One below budget: the parallel paths see the same exception the serial
  // ones do, at construction time.
  try {
    StateSpace too_small(dd.design.program, *count - 1);
    FAIL() << "expected StateSpaceTooLarge";
  } catch (const StateSpaceTooLarge& e) {
    EXPECT_EQ(e.requested(), *count);
    EXPECT_EQ(e.budget(), *count - 1);
  }
}

// ------------------------------------------------------------- campaign

void expect_same_stats(const SampleStats& a, const SampleStats& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.sum, b.sum);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.stddev, b.stddev);
  EXPECT_DOUBLE_EQ(a.min, b.min);
  EXPECT_DOUBLE_EQ(a.max, b.max);
  EXPECT_DOUBLE_EQ(a.p50, b.p50);
  EXPECT_DOUBLE_EQ(a.p95, b.p95);
  EXPECT_DOUBLE_EQ(a.p99, b.p99);
}

void expect_same_results(const ConvergenceResults& a,
                         const ConvergenceResults& b) {
  EXPECT_DOUBLE_EQ(a.converged_fraction, b.converged_fraction);
  expect_same_stats(a.steps, b.steps);
  expect_same_stats(a.rounds, b.rounds);
  expect_same_stats(a.moves, b.moves);
}

TEST(CampaignTest, MatchesRunExperimentAcrossProtocolsAndThreadCounts) {
  struct Case {
    std::string name;
    Design design;
  };
  std::vector<Case> cases;
  cases.push_back(
      {"diffusing", make_diffusing(RootedTree::balanced(7, 2), true).design});
  cases.push_back({"dijkstra-ring", make_dijkstra_ring(5, 6).design});
  cases.push_back(
      {"bounded-ring", make_token_ring_bounded(4, 3, true).design});
  cases.push_back(
      {"coloring", make_coloring(UndirectedGraph::cycle(6)).design});
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    ConvergenceExperiment config;
    config.trials = 24;
    config.seed = 5;
    config.max_steps = 200'000;
    const auto serial = run_experiment(c.design, config);
    for (unsigned threads : {1u, 2u, 8u}) {
      CampaignOptions opts;
      opts.threads = threads;
      const auto campaign = run_campaign(c.design, config, opts);
      expect_same_results(serial, campaign.aggregate);
    }
  }
}

TEST(CampaignTest, SeedDerivationMatchesMasterStream) {
  Rng master(9);
  const auto seeds = derive_trial_seeds(9, 3);
  ASSERT_EQ(seeds.size(), 3u);
  for (const auto& s : seeds) {
    EXPECT_EQ(s.daemon, master());
    EXPECT_EQ(s.start, master());
  }
}

TEST(CampaignTest, JsonlIsStreamedInTrialOrderAndThreadInvariant) {
  const auto dd = make_diffusing(RootedTree::chain(5), true);
  ConvergenceExperiment config;
  config.trials = 16;
  config.seed = 3;

  auto render = [&](unsigned threads) {
    std::ostringstream out;
    CampaignOptions opts;
    opts.threads = threads;
    opts.jsonl = &out;
    run_campaign(dd.design, config, opts);
    return out.str();
  };
  const std::string serial = render(1);
  // One line per trial, in trial order.
  std::istringstream lines(serial);
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find("\"trial\":" + std::to_string(n)),
              std::string::npos);
    EXPECT_NE(line.find("\"design\":\""), std::string::npos);
    EXPECT_NE(line.find("\"steps\":"), std::string::npos);
    ++n;
  }
  EXPECT_EQ(n, config.trials);
  // Byte-identical at any thread count.
  EXPECT_EQ(render(2), serial);
  EXPECT_EQ(render(8), serial);
}

// Routing the multi-threaded trial loop through the store's FrontierEngine
// (CampaignOptions::store.backend = kStore) must leave every output —
// streamed JSONL and the aggregates — byte-identical to the legacy pool at
// 1/2/8 threads, because the engine replays the same grain-1 dynamic
// schedule over item-order-independent trials.
TEST(CampaignTest, StoreRoutedTrialLoopIsByteIdentical) {
  const auto dd = make_diffusing(RootedTree::chain(5), true);
  ConvergenceExperiment config;
  config.trials = 16;
  config.seed = 3;

  auto render = [&](unsigned threads, store::StoreBackend backend,
                    SampleStats* steps_out) {
    std::ostringstream out;
    CampaignOptions opts;
    opts.threads = threads;
    opts.store.backend = backend;
    opts.jsonl = &out;
    const auto campaign = run_campaign(dd.design, config, opts);
    *steps_out = campaign.aggregate.steps;
    return out.str();
  };

  SampleStats legacy_steps;
  const std::string legacy =
      render(1, store::StoreBackend::kLegacyDense, &legacy_steps);
  for (unsigned threads : {1u, 2u, 8u}) {
    SampleStats store_steps;
    const std::string routed =
        render(threads, store::StoreBackend::kStore, &store_steps);
    EXPECT_EQ(routed, legacy) << threads << " threads";
    EXPECT_EQ(store_steps.mean, legacy_steps.mean) << threads << " threads";
    EXPECT_EQ(store_steps.max, legacy_steps.max) << threads << " threads";
    EXPECT_EQ(store_steps.sum, legacy_steps.sum) << threads << " threads";
  }
}

TEST(CampaignTest, RecordsCarrySeedsAndOutcomes) {
  const auto dd = make_diffusing(RootedTree::chain(4), true);
  ConvergenceExperiment config;
  config.trials = 8;
  config.seed = 21;
  CampaignOptions opts;
  opts.threads = 4;
  const auto campaign = run_campaign(dd.design, config, opts);
  ASSERT_EQ(campaign.trials.size(), 8u);
  const auto seeds = derive_trial_seeds(config.seed, config.trials);
  for (std::size_t i = 0; i < campaign.trials.size(); ++i) {
    EXPECT_EQ(campaign.trials[i].trial, i);
    EXPECT_EQ(campaign.trials[i].seeds.daemon, seeds[i].daemon);
    EXPECT_EQ(campaign.trials[i].seeds.start, seeds[i].start);
    EXPECT_TRUE(campaign.trials[i].outcome.converged);
  }
}

// ------------------------------------------------------ logging safety

TEST(ParallelLoggingTest, ConcurrentWritersNeverInterleaveMidLine) {
  std::ostringstream sink;
  Log::set_sink(&sink);
  Log::set_level(LogLevel::kInfo);
  {
    ThreadPool pool(8);
    parallel_for_chunked(pool, 0, 400, 1,
                         [](std::size_t chunk, std::uint64_t, std::uint64_t,
                            unsigned) {
                           NONMASK_INFO() << "line-" << chunk << "-end";
                         });
  }
  Log::set_level(LogLevel::kOff);
  Log::set_sink(nullptr);

  std::istringstream lines(sink.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.find("[INFO ] line-"), 0u) << line;
    EXPECT_EQ(line.rfind("-end"), line.size() - 4) << line;
    ++n;
  }
  EXPECT_EQ(n, 400u);
}

}  // namespace
}  // namespace nonmask
