// Additional coverage for the Section 7 refinement machinery and the
// engine's accounting, exercising combinations the main suites do not.
#include <gtest/gtest.h>

#include "cgraph/refine.hpp"
#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "core/describe.hpp"
#include "protocols/spanning_tree.hpp"
#include "engine/simulator.hpp"
#include "faults/injector.hpp"
#include "msg/mp_token_ring.hpp"
#include "protocols/token_ring.hpp"
#include "sched/daemons.hpp"

namespace nonmask {
namespace {

// Restricting the layered token ring's graph to "layer 0 holds" drops
// exactly the layer-0 (>=) edges and keeps the layer-1 (=) edges.
TEST(RefineMoreTest, TokenRingRestrictionDropsSatisfiedLayer) {
  const auto tr = make_token_ring_bounded(4, 3, false);
  const Design& d = tr.design;
  StateSpace space(d.program);
  ValidationOptions opts;
  opts.space = &space;

  const auto conv = d.program.actions_of_kind(ActionKind::kConvergence);
  const auto cg = infer_constraint_graph(d.program, conv);
  ASSERT_TRUE(cg.ok);

  std::vector<PredicateFn> layer0;
  for (std::size_t idx : tr.layers[0]) {
    layer0.push_back(
        d.invariant.at(static_cast<std::size_t>(
                           d.program.action(idx).constraint_id()))
            .fn);
  }
  const auto restricted =
      restrict_constraint_graph(d, cg.graph, p_all(layer0), opts);
  EXPECT_EQ(restricted.dropped.size(), tr.layers[0].size());
  EXPECT_EQ(static_cast<std::size_t>(restricted.graph.graph.num_edges()),
            tr.layers[1].size());
  for (std::size_t idx : restricted.dropped) {
    // Every dropped edge is a layer-0 action.
    EXPECT_NE(std::find(tr.layers[0].begin(), tr.layers[0].end(), idx),
              tr.layers[0].end());
  }
}

TEST(RefineMoreTest, SuggestLayersGivesUpOnMutualCrossNodeBreaks) {
  // On a cycle, neighboring spanning-tree constraints can break each other
  // across *different* target nodes — no per-node order can fix that, so
  // the heuristic refuses (and indeed Theorems 1-3 cannot apply; only the
  // exact checker proves this protocol, see spanning_tree_test).
  const auto g = UndirectedGraph::cycle(4);
  const auto st = make_spanning_tree(g, 0);
  StateSpace space(st.design.program);
  ValidationOptions opts;
  opts.space = &space;
  const auto layers = suggest_layers(st.design, opts);
  if (layers.has_value()) {
    // If the heuristic does emit layers, Theorem 3 must still reject them
    // (soundness: acceptance would contradict the cyclic interference).
    const auto report = validate_theorem3(st.design, *layers, opts);
    EXPECT_TRUE(report.applies == false ||
                check_convergence(space, st.design.S(), st.design.T())
                        .verdict == ConvergenceVerdict::kConverges);
  }
}

TEST(RefineMoreTest, SuggestLayersRejectsUnboundActions) {
  // Dijkstra's ring annotates constraints without binding convergence
  // actions; no layering is derivable.
  const auto tr = make_dijkstra_ring(4, 5);
  ValidationOptions opts;
  opts.samples = 500;
  EXPECT_FALSE(suggest_layers(tr.design, opts).has_value());
}

TEST(RefineMoreTest, DescribeMpRingShowsChannels) {
  const auto mp = make_mp_token_ring(3, 5);
  const std::string text = describe_program(mp.design.program);
  EXPECT_NE(text.find("ch.0 : [-1, 4]"), std::string::npos);
  EXPECT_NE(text.find("[fault] lose@ch.0"), std::string::npos);
  EXPECT_NE(text.find("[closure] send@0"), std::string::npos);
}

TEST(RefineMoreTest, DistributedDaemonMovesExceedSteps) {
  const auto tr = make_dijkstra_ring(24, 25);
  DistributedDaemon daemon(0.8, 5);
  Rng rng(9);
  RunOptions opts;
  opts.max_steps = 200'000;
  const auto r = converge(tr.design, tr.design.program.random_state(rng),
                          daemon, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.moves, r.steps);
}

TEST(RefineMoreTest, TraceSnapshotsAndViolationsTogether) {
  const auto tr = make_token_ring_bounded(4, 3, true);
  RoundRobinDaemon daemon;
  Simulator sim(tr.design.program, daemon);
  RunOptions opts;
  opts.max_steps = 50;
  opts.record_trace = true;
  opts.record_snapshots = true;
  opts.track_violations = &tr.design.invariant;
  opts.stop_when = [](const State&) { return false; };
  // From all-zero the run climbs to the ceiling deterministically
  // (12 steps for n = 4, x_max = 3) and then deadlocks in S.
  const auto r = sim.run(tr.design.program.initial_state(), opts);
  EXPECT_EQ(r.trace.num_steps(), r.steps);
  EXPECT_EQ(r.trace.snapshots().size(), r.steps);
  EXPECT_GE(r.trace.violation_timeline().size(), r.steps);
  EXPECT_NE(r.trace.format(tr.design.program, 5).find("..."),
            std::string::npos);  // truncation marker for long traces
}

TEST(RefineMoreTest, InjectorDeterministicAcrossReset) {
  const auto tr = make_dijkstra_ring(8, 9);
  auto inj = FaultInjector::bernoulli(
      std::make_shared<CorruptKVariables>(2), 0.2, 30, 11);
  State a = tr.design.program.initial_state();
  State b = a;
  for (std::size_t step = 0; step < 100; ++step) {
    inj(step, tr.design.program, a);
  }
  const std::size_t first = inj.faults_injected();
  inj.reset();
  for (std::size_t step = 0; step < 100; ++step) {
    inj(step, tr.design.program, b);
  }
  EXPECT_EQ(inj.faults_injected(), first);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace nonmask
