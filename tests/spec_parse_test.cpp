// The spec DSL front end: expression parsing/evaluation (including the
// total `/`-and-`%`-by-zero semantics), schema validation with
// field-precise paths and lines, and compile-time expansion semantics
// (per-process families, {j} names, group interleaving, derived reads).
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "core/program.hpp"
#include "spec/compile.hpp"
#include "spec/expr.hpp"
#include "spec/spec.hpp"

namespace nonmask {
namespace {

using spec::CompileEnv;
using spec::CompiledSpec;
using spec::ExprError;
using spec::SpecError;
using spec::Topology;
using spec::compile_expr;
using spec::compile_spec_text;
using spec::eval_index_expr;
using spec::parse_expr;
using spec::parse_spec;

long long idx(const std::string& text,
              const std::unordered_map<std::string, long long>& params = {},
              const Topology* topo = nullptr) {
  CompileEnv env;
  env.params = &params;
  env.topo = topo;
  return eval_index_expr(text, env);
}

TEST(SpecExprTest, PrecedenceAndArithmetic) {
  EXPECT_EQ(idx("2 + 3 * 4"), 14);
  EXPECT_EQ(idx("(2 + 3) * 4"), 20);
  EXPECT_EQ(idx("10 - 4 - 3"), 3);  // left associative
  EXPECT_EQ(idx("7 % 3"), 1);
  EXPECT_EQ(idx("-5 + 2"), -3);
  EXPECT_EQ(idx("!0"), 1);
  EXPECT_EQ(idx("!7"), 0);
}

TEST(SpecExprTest, DivisionAndModuloByZeroAreTotal) {
  // Documented totality: x / 0 == 0 and x % 0 == 0, never a trap.
  EXPECT_EQ(idx("7 / 0"), 0);
  EXPECT_EQ(idx("7 % 0"), 0);
  EXPECT_EQ(idx("0 / 0"), 0);
  EXPECT_EQ(idx("(3 - 3) % (2 - 2)"), 0);
}

TEST(SpecExprTest, ComparisonsBoolOpsTernary) {
  EXPECT_EQ(idx("3 < 4"), 1);
  EXPECT_EQ(idx("3 >= 4"), 0);
  EXPECT_EQ(idx("1 && 0 || 1"), 1);
  EXPECT_EQ(idx("1 ? 10 : 20"), 10);
  EXPECT_EQ(idx("0 ? 10 : 1 ? 20 : 30"), 20);  // right associative
}

TEST(SpecExprTest, ParamsAndMalformedInput) {
  EXPECT_EQ(idx("x_max + 1", {{"x_max", 3}}), 4);
  EXPECT_THROW(idx("2 +"), ExprError);
  EXPECT_THROW(idx("2 3"), ExprError);       // trailing garbage
  EXPECT_THROW(idx("nope"), ExprError);      // unknown identifier
  EXPECT_THROW(idx("(1 + 2"), ExprError);    // unbalanced paren
  EXPECT_THROW(idx("f(1, 2)"), ExprError);   // unknown call
}

TEST(SpecExprTest, IntegerLiteralOverflowIsAParseError) {
  // Specs are attacker-suppliable over HTTP: a literal past LLONG_MAX must
  // throw, not silently wrap through signed-overflow UB.
  EXPECT_EQ(idx("2147483647"), 2147483647LL);           // full Value range
  EXPECT_THROW(idx("9223372036854775808"), ExprError);  // LLONG_MAX + 1
  EXPECT_THROW(idx("99999999999999999999999999999999"), ExprError);
  EXPECT_THROW(idx("1 + 18446744073709551616"), ExprError);
}

Topology ring4() {
  Topology t;
  t.kind = Topology::Kind::kRing;
  t.n = 4;
  t.nbrs = {{3, 1}, {0, 2}, {1, 3}, {2, 0}};
  return t;
}

TEST(SpecExprTest, TopologyFunctionsAndComprehensions) {
  const Topology t = ring4();
  std::unordered_map<std::string, long long> params{{"n", 4}};
  EXPECT_EQ(idx("next(1)", params, &t), 2);
  EXPECT_EQ(idx("prev(0)", params, &t), 3);
  EXPECT_EQ(idx("nproc()", params, &t), 4);
  EXPECT_EQ(idx("sum(k : procs(), k)", params, &t), 6);
  EXPECT_EQ(idx("count(k : range(0, 4), k % 2 == 0)", params, &t), 2);
  EXPECT_EQ(idx("max(k : nbrs(0), k)", params, &t), 3);
  EXPECT_EQ(idx("all(k : procs(), k < 4)", params, &t), 1);
  EXPECT_EQ(idx("any(k : procs(), k == 9)", params, &t), 0);
  // mex/first always compile to state-time closures (never index consts).
  CompileEnv env;
  std::unordered_map<std::string, long long> p2{{"n", 4}};
  env.params = &p2;
  env.topo = &t;
  const State empty(0);
  EXPECT_EQ(compile_expr(parse_expr("mex(k : range(0, 3), k)"), env).eval(empty),
            3);
  EXPECT_EQ(
      compile_expr(parse_expr("first(k : procs(), k >= 2)"), env).eval(empty),
      2);
}

TEST(SpecExprTest, StateClosuresCollectReadsInFirstOccurrenceOrder) {
  Program p("t");
  const VarId x = p.add_variable(VariableSpec("x", 0, 7));
  const VarId y = p.add_variable(VariableSpec("y", 0, 7));
  CompileEnv env;
  std::unordered_map<std::string, long long> params;
  env.params = &params;
  env.program = &p;
  const auto ce = compile_expr(parse_expr("y + x * 2 + y"), env);
  ASSERT_FALSE(ce.is_const);
  ASSERT_EQ(ce.reads.size(), 2u);  // deduplicated
  EXPECT_EQ(ce.reads[0], y);       // first occurrence first
  EXPECT_EQ(ce.reads[1], x);
  State s(2);
  s.set(x, 3);
  s.set(y, 1);
  EXPECT_EQ(ce.eval(s), 1 + 3 * 2 + 1);
}

TEST(SpecExprTest, ConstantSubexpressionsFold) {
  Program p("t");
  p.add_variable(VariableSpec("x", 0, 7));
  CompileEnv env;
  std::unordered_map<std::string, long long> params{{"n", 4}};
  env.params = &params;
  env.program = &p;
  // No program variable referenced -> whole expression is a constant.
  const auto ce = compile_expr(parse_expr("n * 2 + 1"), env);
  EXPECT_TRUE(ce.is_const);
  EXPECT_EQ(ce.value, 9);
  EXPECT_TRUE(ce.reads.empty());
}

// --- schema validation ----------------------------------------------------

std::string minimal_spec(const std::string& extra = "") {
  return std::string("{\n")
      + "  \"schema\": \"nonmask-spec/1\",\n"
      + "  \"name\": \"mini\",\n"
      + "  \"variables\": [{\"name\": \"x\", \"min\": \"0\", \"max\": \"3\"}],\n"
      + "  \"actions\": [{\"name\": \"step\", \"kind\": \"convergence\",\n"
      + "                \"guard\": \"x > 0\", \"assign\": {\"x\": \"x - 1\"},\n"
      + "                \"constraint\": \"0\"}],\n"
      + "  \"constraints\": [{\"name\": \"zero\", \"expr\": \"x == 0\"}]"
      + extra + "\n}\n";
}

TEST(SpecParseTest, AcceptsMinimalSpec) {
  const auto doc = parse_spec(minimal_spec());
  EXPECT_EQ(doc.name, "mini");
  EXPECT_EQ(doc.variables.size(), 1u);
  EXPECT_EQ(doc.actions.size(), 1u);
  EXPECT_EQ(doc.constraints.size(), 1u);
}

TEST(SpecParseTest, RejectsWrongSchema) {
  try {
    parse_spec("{\"schema\": \"nonmask-spec/99\", \"name\": \"x\"}");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(e.path(), "$.schema");
  }
  EXPECT_THROW(parse_spec("{\"name\": \"x\"}"), SpecError);  // schema missing
}

TEST(SpecParseTest, ErrorsCarryPathAndLine) {
  // guard must be a string; the error names the exact field and line.
  const std::string text =
      "{\n"
      "  \"schema\": \"nonmask-spec/1\",\n"
      "  \"name\": \"bad\",\n"
      "  \"variables\": [{\"name\": \"x\", \"min\": \"0\", \"max\": \"1\"}],\n"
      "  \"actions\": [\n"
      "    {\"name\": \"a\", \"kind\": \"closure\",\n"
      "     \"guard\": 17,\n"
      "     \"assign\": {\"x\": \"0\"}}\n"
      "  ]\n"
      "}\n";
  try {
    parse_spec(text);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(e.path(), "$.actions[0].guard");
    EXPECT_EQ(e.line(), 7);
    EXPECT_NE(std::string(e.what()).find("line 7"), std::string::npos);
  }
}

TEST(SpecParseTest, RejectsUnknownActionKindAndJobType) {
  EXPECT_THROW(
      parse_spec(
          "{\"schema\": \"nonmask-spec/1\", \"name\": \"x\","
          " \"variables\": [{\"name\": \"x\", \"min\": \"0\", \"max\": \"1\"}],"
          " \"actions\": [{\"name\": \"a\", \"kind\": \"sideways\","
          "                \"assign\": {\"x\": \"0\"}}]}"),
      SpecError);
  EXPECT_THROW(parse_spec(minimal_spec(",\n  \"job\": {\"type\": \"dance\"}")),
               SpecError);
}

TEST(SpecParseTest, RejectsUnknownTopLevelField) {
  EXPECT_THROW(parse_spec(minimal_spec(",\n  \"typo_field\": 1")), SpecError);
}

TEST(SpecParseTest, ContentHashIsStableAndTextSensitive) {
  const std::string a = minimal_spec();
  EXPECT_EQ(spec::fnv1a64_hex(a), spec::fnv1a64_hex(a));
  EXPECT_EQ(spec::fnv1a64_hex(a).size(), 16u);
  EXPECT_NE(spec::fnv1a64_hex(a), spec::fnv1a64_hex(a + " "));
}

// --- compilation semantics ------------------------------------------------

const char* kRingSpec = R"({
  "schema": "nonmask-spec/1",
  "name": "ring-demo",
  "topology": {"kind": "ring", "n": 3},
  "variables": [{"name": "x", "per": "process", "min": "0", "max": "2"}],
  "constraints": [
    {"name": "eq.{j}", "per": "process", "where": "j > 0",
     "expr": "x[j] == x[j - 1]"}
  ],
  "actions": [
    {"name": "copy@{j}", "kind": "convergence", "per": "process",
     "where": "j > 0", "guard": "x[j] != x[j - 1]",
     "assign": {"x[j]": "x[j - 1]"}, "constraint": "j - 1"}
  ]
})";

TEST(SpecCompileTest, ExpandsPerProcessDeclarations) {
  const CompiledSpec cs = compile_spec_text(kRingSpec);
  const Program& p = cs.design.program;
  ASSERT_EQ(p.num_variables(), 3u);
  EXPECT_EQ(p.variable(VarId(0)).name, "x.0");
  EXPECT_EQ(p.variable(VarId(2)).name, "x.2");
  EXPECT_EQ(p.variable(VarId(1)).process, 1);
  ASSERT_EQ(p.num_actions(), 2u);
  EXPECT_EQ(p.action(0).name(), "copy@1");
  EXPECT_EQ(p.action(1).name(), "copy@2");
  EXPECT_EQ(p.action(0).constraint_id(), 0);
  EXPECT_EQ(p.action(1).constraint_id(), 1);
  ASSERT_EQ(cs.design.invariant.size(), 2u);
  EXPECT_EQ(cs.design.invariant.at(0).name, "eq.1");
  // Derived reads: guard + rhs first-occurrence order, deduplicated.
  ASSERT_EQ(p.action(0).reads().size(), 2u);
  EXPECT_EQ(p.action(0).reads()[0], p.find_variable("x.1"));
  EXPECT_EQ(p.action(0).reads()[1], p.find_variable("x.0"));
  // Provenance fields round through.
  EXPECT_EQ(cs.spec_name, "ring-demo");
  EXPECT_EQ(cs.schema, spec::kSchemaVersion);
  EXPECT_EQ(cs.content_hash.size(), 16u);
}

TEST(SpecCompileTest, ActionSemanticsAreSimultaneous) {
  // Both right-hand sides read the pre-state: a swap really swaps.
  const char* text = R"({
    "schema": "nonmask-spec/1",
    "name": "swap",
    "variables": [
      {"name": "a", "min": "0", "max": "9"},
      {"name": "b", "min": "0", "max": "9"}
    ],
    "constraints": [{"name": "eq", "expr": "a == b"}],
    "actions": [
      {"name": "swap", "kind": "convergence", "guard": "a != b",
       "assign": {"a": "b", "b": "a"}, "constraint": "0"}
    ]
  })";
  const CompiledSpec cs = compile_spec_text(text);
  const Program& p = cs.design.program;
  State s(2);
  s.set(VarId(0), 3);
  s.set(VarId(1), 8);
  const State t = p.action(0).apply(s);
  EXPECT_EQ(t.get(VarId(0)), 8);
  EXPECT_EQ(t.get(VarId(1)), 3);
}

TEST(SpecCompileTest, GroupedDeclarationsInterleaveProcessMajor) {
  const char* text = R"({
    "schema": "nonmask-spec/1",
    "name": "grouped",
    "topology": {"kind": "ring", "n": 2},
    "variables": [{"name": "x", "per": "process", "min": "0", "max": "1"}],
    "constraints": [
      {"name": "ge.{j}", "per": "process", "expr": "x[j] >= 0",
       "group": "layers"},
      {"name": "eq.{j}", "per": "process", "expr": "x[j] == 0",
       "group": "layers"}
    ],
    "actions": [
      {"name": "fix@{j}", "kind": "convergence", "per": "process",
       "guard": "x[j] != 0", "assign": {"x[j]": "0"}, "constraint": "2 * j + 1"}
    ]
  })";
  const CompiledSpec cs = compile_spec_text(text);
  // Interleaved: ge.0, eq.0, ge.1, eq.1 — not ge.0, ge.1, eq.0, eq.1.
  ASSERT_EQ(cs.design.invariant.size(), 4u);
  EXPECT_EQ(cs.design.invariant.at(0).name, "ge.0");
  EXPECT_EQ(cs.design.invariant.at(1).name, "eq.0");
  EXPECT_EQ(cs.design.invariant.at(2).name, "ge.1");
  EXPECT_EQ(cs.design.invariant.at(3).name, "eq.1");
}

TEST(SpecCompileTest, RejectsSemanticErrorsWithPath) {
  // Unknown variable in a guard.
  const char* text = R"({
    "schema": "nonmask-spec/1",
    "name": "bad",
    "variables": [{"name": "x", "min": "0", "max": "1"}],
    "constraints": [{"name": "c", "expr": "x == 0"}],
    "actions": [
      {"name": "a", "kind": "convergence", "guard": "ghost > 0",
       "assign": {"x": "0"}, "constraint": "0"}
    ]
  })";
  try {
    compile_spec_text(text);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(e.path().find("$.actions[0]"), std::string::npos);
  }
}

TEST(SpecCompileTest, RejectsOutOfRangeConstraintId) {
  const char* text = R"({
    "schema": "nonmask-spec/1",
    "name": "bad",
    "variables": [{"name": "x", "min": "0", "max": "1"}],
    "constraints": [{"name": "c", "expr": "x == 0"}],
    "actions": [
      {"name": "a", "kind": "convergence", "guard": "x > 0",
       "assign": {"x": "0"}, "constraint": "5"}
    ]
  })";
  EXPECT_THROW(compile_spec_text(text), SpecError);
}

}  // namespace
}  // namespace nonmask
