// Unit tests for the graph substrate: digraph, SCC/shape analysis, ranks,
// and topology generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graphlib/analysis.hpp"
#include "graphlib/digraph.hpp"
#include "graphlib/topology.hpp"

namespace nonmask {
namespace {

Digraph chain_graph(int n) {
  Digraph g(n);
  for (int v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

TEST(DigraphTest, DegreesAndEdges) {
  Digraph g(3);
  g.add_edge(0, 1, 7);
  g.add_edge(0, 2);
  g.add_edge(2, 2);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.out_degree(0), 2);
  EXPECT_EQ(g.in_degree(2), 2);
  EXPECT_EQ(g.in_degree_proper(2), 1);
  EXPECT_EQ(g.edge(0).payload, 7);
}

TEST(DigraphTest, BadEdgeThrows) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(0, 5), std::out_of_range);
  EXPECT_THROW(g.add_edge(-1, 0), std::out_of_range);
}

TEST(DigraphTest, DotRenderingMentionsEdges) {
  Digraph g(2);
  g.set_node_label(0, "{x}");
  g.add_edge(0, 1, 0);
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("{x}"), std::string::npos);
}

TEST(SccTest, ChainHasSingletonComponents) {
  const auto scc = tarjan_scc(chain_graph(5));
  EXPECT_EQ(scc.num_components, 5);
}

TEST(SccTest, CycleIsOneComponent) {
  Digraph g(4);
  for (int v = 0; v < 4; ++v) g.add_edge(v, (v + 1) % 4);
  const auto scc = tarjan_scc(g);
  EXPECT_EQ(scc.num_components, 1);
  EXPECT_EQ(scc.sizes(), (std::vector<int>{4}));
}

TEST(SccTest, TwoCyclesSeparated) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 2);
  const auto scc = tarjan_scc(g);
  EXPECT_EQ(scc.num_components, 2);
}

TEST(ShapeTest, AcyclicAndSelfLooping) {
  Digraph g = chain_graph(4);
  EXPECT_TRUE(is_acyclic(g));
  EXPECT_TRUE(is_self_looping(g));
  g.add_edge(2, 2);
  EXPECT_FALSE(is_acyclic(g));  // self-loop counts as a cycle
  EXPECT_TRUE(is_self_looping(g));
  g.add_edge(3, 0);
  EXPECT_FALSE(is_self_looping(g));  // proper cycle
}

TEST(ShapeTest, OutTreeRecognition) {
  // A star rooted at 0.
  Digraph star(4);
  star.add_edge(0, 1);
  star.add_edge(0, 2);
  star.add_edge(0, 3);
  EXPECT_TRUE(is_out_tree(star));
  EXPECT_EQ(out_tree_root(star), 0);

  // Two roots: not an out-tree.
  Digraph forest(4);
  forest.add_edge(0, 1);
  forest.add_edge(2, 3);
  EXPECT_FALSE(is_out_tree(forest));

  // In-degree 2: not an out-tree.
  Digraph diamond(3);
  diamond.add_edge(0, 2);
  diamond.add_edge(1, 2);
  EXPECT_FALSE(is_out_tree(diamond));

  // A self-loop disqualifies.
  Digraph looped = chain_graph(3);
  looped.add_edge(1, 1);
  EXPECT_FALSE(is_out_tree(looped));

  // A directed cycle with in-degree one everywhere is not an out-tree.
  Digraph ring(3);
  for (int v = 0; v < 3; ++v) ring.add_edge(v, (v + 1) % 3);
  EXPECT_FALSE(is_out_tree(ring));
}

TEST(ShapeTest, WeakConnectivity) {
  Digraph g(3);
  g.add_edge(0, 1);
  EXPECT_FALSE(is_weakly_connected(g));
  g.add_edge(2, 1);
  EXPECT_TRUE(is_weakly_connected(g));
  EXPECT_TRUE(is_weakly_connected(Digraph(1)));
  EXPECT_TRUE(is_weakly_connected(Digraph(0)));
}

TEST(RankTest, ChainRanksIncrease) {
  const auto ranks = node_ranks(chain_graph(4));
  ASSERT_TRUE(ranks.has_value());
  EXPECT_EQ(*ranks, (std::vector<int>{1, 2, 3, 4}));
}

TEST(RankTest, SelfLoopsIgnored) {
  Digraph g = chain_graph(3);
  g.add_edge(1, 1);
  const auto ranks = node_ranks(g);
  ASSERT_TRUE(ranks.has_value());
  EXPECT_EQ(*ranks, (std::vector<int>{1, 2, 3}));
}

TEST(RankTest, CyclicGraphHasNoRanks) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_FALSE(node_ranks(g).has_value());
  EXPECT_FALSE(topo_order_ignoring_self_loops(g).has_value());
}

TEST(RankTest, DiamondTakesMaxOfPredecessors) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(1, 2);  // lengthen one path
  const auto ranks = node_ranks(g);
  ASSERT_TRUE(ranks.has_value());
  EXPECT_EQ((*ranks)[3], 4);  // 0 -> 1 -> 2 -> 3
}

TEST(RootedTreeTest, ChainProperties) {
  const auto t = RootedTree::chain(5);
  EXPECT_EQ(t.size(), 5);
  EXPECT_EQ(t.root(), 0);
  EXPECT_EQ(t.height(), 4);
  EXPECT_TRUE(t.is_leaf(4));
  EXPECT_FALSE(t.is_leaf(0));
  EXPECT_EQ(t.depth(3), 3);
  EXPECT_EQ(t.parent(3), 2);
}

TEST(RootedTreeTest, StarProperties) {
  const auto t = RootedTree::star(6);
  EXPECT_EQ(t.height(), 1);
  EXPECT_EQ(t.children(0).size(), 5u);
}

TEST(RootedTreeTest, BalancedBinary) {
  const auto t = RootedTree::balanced(7, 2);
  EXPECT_EQ(t.height(), 2);
  EXPECT_EQ(t.children(0).size(), 2u);
  EXPECT_EQ(t.parent(5), 2);
}

TEST(RootedTreeTest, RandomTreeIsValid) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const auto t = RootedTree::random(12, rng);
    EXPECT_EQ(t.size(), 12);
    EXPECT_EQ(t.bfs_order().size(), 12u);
    // Every non-root node has a strictly smaller-depth parent.
    for (int j = 1; j < t.size(); ++j) {
      EXPECT_EQ(t.depth(j), t.depth(t.parent(j)) + 1);
    }
  }
}

TEST(RootedTreeTest, InvalidParentArraysThrow) {
  EXPECT_THROW(RootedTree({1, 0}), std::invalid_argument);       // no root
  EXPECT_THROW(RootedTree({0, 1}), std::invalid_argument);       // two roots
  EXPECT_THROW(RootedTree({0, 2, 1}), std::invalid_argument);    // cycle
  EXPECT_THROW(RootedTree(std::vector<int>{}), std::invalid_argument);
}

TEST(UndirectedGraphTest, Generators) {
  const auto c = UndirectedGraph::cycle(5);
  EXPECT_EQ(c.num_edges(), 5);
  EXPECT_EQ(c.max_degree(), 2);

  const auto p = UndirectedGraph::path(4);
  EXPECT_EQ(p.num_edges(), 3);

  const auto k = UndirectedGraph::complete(4);
  EXPECT_EQ(k.num_edges(), 6);
  EXPECT_EQ(k.max_degree(), 3);

  const auto g = UndirectedGraph::grid(2, 3);
  EXPECT_EQ(g.size(), 6);
  EXPECT_EQ(g.num_edges(), 7);
}

TEST(UndirectedGraphTest, RandomConnectedIsConnected) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = UndirectedGraph::random_connected(15, 5, rng);
    // BFS from 0 must reach all nodes.
    std::vector<bool> seen(15, false);
    std::vector<int> queue{0};
    seen[0] = true;
    std::size_t head = 0;
    int count = 1;
    while (head < queue.size()) {
      for (int w : g.neighbors(queue[head++])) {
        if (!seen[static_cast<std::size_t>(w)]) {
          seen[static_cast<std::size_t>(w)] = true;
          ++count;
          queue.push_back(w);
        }
      }
    }
    EXPECT_EQ(count, 15);
  }
}

TEST(UndirectedGraphTest, GnpExtremes) {
  Rng rng(4);
  EXPECT_EQ(UndirectedGraph::random_gnp(6, 0.0, rng).num_edges(), 0);
  EXPECT_EQ(UndirectedGraph::random_gnp(6, 1.0, rng).num_edges(), 15);
}

TEST(UndirectedGraphTest, SelfLoopRejected) {
  UndirectedGraph g(3);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace nonmask
