// Tests for the compact state store (src/store/): packed layouts, the
// interning arena, the sharded concurrent set, the compact bookkeeping
// containers, the spillable frontier, and the frontier engine against the
// serial reference implementations.
#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "checker/fault_span.hpp"
#include "checker/state_space.hpp"
#include "core/program.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/running_example.hpp"
#include "protocols/token_ring.hpp"
#include "store/arena.hpp"
#include "store/bitset.hpp"
#include "store/concurrent_set.hpp"
#include "store/config.hpp"
#include "store/frontier.hpp"
#include "store/config.hpp"
#include "store/odometer.hpp"
#include "store/packed.hpp"

namespace nonmask {
namespace {

Program small_program() {
  Program p("store-test");
  p.add_variable({"a", 0, 4});    // 5 values -> 3 bits
  p.add_variable({"b", -2, 1});   // 4 values -> 2 bits
  p.add_variable({"c", 7, 7});    // singleton -> 0 bits
  p.add_variable({"d", 0, 1});    // 2 values -> 1 bit
  return p;
}

// ---------------------------------------------------------------- layout

TEST(PackedLayoutTest, WidthsAreCeilLog2OfDomain) {
  const Program p = small_program();
  const store::PackedLayout layout(p);
  EXPECT_EQ(layout.width(0), 3u);
  EXPECT_EQ(layout.width(1), 2u);
  EXPECT_EQ(layout.width(2), 0u);
  EXPECT_EQ(layout.width(3), 1u);
  EXPECT_EQ(layout.total_bits(), 6u);
  EXPECT_EQ(layout.words(), 1u);
}

TEST(PackedLayoutTest, PackUnpackRoundTripsEveryState) {
  const Program p = small_program();
  const StateSpace space(p);
  const store::PackedLayout layout(p);
  std::vector<std::uint64_t> words(layout.words());
  State s(p.num_variables());
  State back(p.num_variables());
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, s);
    layout.pack(s, words.data());
    layout.unpack(words.data(), back);
    ASSERT_EQ(s, back) << "code " << code;
  }
}

TEST(PackedLayoutTest, FieldsNeverStraddleWords) {
  // 3 x 30 bits cannot share two words without straddling; the layout must
  // pad so each field lives in one word.
  Program p("wide");
  p.add_variable({"x", 0, (1 << 30) - 1});
  p.add_variable({"y", 0, (1 << 30) - 1});
  p.add_variable({"z", 0, (1 << 30) - 1});
  const store::PackedLayout layout(p);
  EXPECT_EQ(layout.words(), 2u);

  State s(3);
  s.set(VarId(0), (1 << 30) - 1);
  s.set(VarId(1), 12345);
  s.set(VarId(2), (1 << 30) - 2);
  std::vector<std::uint64_t> words(layout.words());
  State back(3);
  layout.pack(s, words.data());
  layout.unpack(words.data(), back);
  EXPECT_EQ(s, back);
}

TEST(PackedLayoutTest, HashDependsOnSeedAndContent) {
  const Program p = small_program();
  const StateSpace space(p);
  const store::PackedLayout layout(p);
  std::vector<std::uint64_t> w0(layout.words()), w1(layout.words());
  State s(p.num_variables());
  space.decode_into(0, s);
  layout.pack(s, w0.data());
  space.decode_into(1, s);
  layout.pack(s, w1.data());

  EXPECT_NE(layout.hash(w0.data(), 1), layout.hash(w1.data(), 1));
  EXPECT_NE(layout.hash(w0.data(), 1), layout.hash(w0.data(), 2));
  EXPECT_EQ(layout.hash(w0.data(), 7), layout.hash(w0.data(), 7));
}

// ---------------------------------------------------------------- arena

TEST(PackedStateStoreTest, DenseIdsAndStablePointers) {
  store::PackedStateStore arena(2, /*slab_records=*/4);
  std::vector<const std::uint64_t*> ptrs;
  for (std::uint64_t i = 0; i < 40; ++i) {
    const std::uint64_t rec[2] = {i, i * 1000};
    EXPECT_EQ(arena.intern(rec), i);
    ptrs.push_back(arena.get(i));
  }
  EXPECT_EQ(arena.size(), 40u);
  // Records never move: pointers taken before later slabs were appended
  // still read back the original words.
  for (std::uint64_t i = 0; i < 40; ++i) {
    EXPECT_EQ(ptrs[i], arena.get(i));
    EXPECT_EQ(ptrs[i][0], i);
    EXPECT_EQ(ptrs[i][1], i * 1000);
  }
}

TEST(PackedStateStoreTest, SlabsAreCacheLineAligned) {
  store::PackedStateStore arena(1, /*slab_records=*/2);
  const std::uint64_t rec[1] = {42};
  for (int i = 0; i < 5; ++i) arena.intern(rec);
  for (std::uint64_t id = 0; id < 5; id += 2) {
    // First record of each slab starts the slab allocation.
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(arena.get(id)) % 64, 0u);
  }
}

// ------------------------------------------------------------- hash set

TEST(ConcurrentPackedSetTest, InsertFindAndDenseIdsWithOneShard) {
  const Program p = small_program();
  const StateSpace space(p);
  const store::PackedLayout layout(p);
  store::ConcurrentPackedSet set(layout, /*shard_bits=*/0, /*seed=*/1);

  std::vector<std::uint64_t> words(layout.words());
  State s(p.num_variables());
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, s);
    layout.pack(s, words.data());
    const auto [id, fresh] = set.insert(words.data());
    EXPECT_TRUE(fresh);
    EXPECT_EQ(id, code);  // dense insertion-order ids with one shard
    const auto [id2, fresh2] = set.insert(words.data());
    EXPECT_FALSE(fresh2);
    EXPECT_EQ(id2, id);
    EXPECT_TRUE(equal(layout, set.get(id), words.data()));
  }
  EXPECT_EQ(set.size(), space.size());
}

TEST(ConcurrentPackedSetTest, ShardStatsAccountForEveryEntry) {
  const Program p = small_program();
  const StateSpace space(p);
  const store::PackedLayout layout(p);
  store::ConcurrentPackedSet set(layout, /*shard_bits=*/3, /*seed=*/99);
  EXPECT_EQ(set.shard_count(), 8u);

  std::vector<std::uint64_t> words(layout.words());
  State s(p.num_variables());
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, s);
    layout.pack(s, words.data());
    set.insert(words.data());
  }
  std::uint64_t total = 0;
  for (const auto& st : set.shard_stats()) {
    total += st.size;
    EXPECT_GE(st.capacity, st.size);
  }
  EXPECT_EQ(total, space.size());
  EXPECT_EQ(set.size(), space.size());
}

TEST(ConcurrentPackedSetTest, GrowsPastInitialCapacity) {
  Program p("grow");
  p.add_variable({"x", 0, 9999});
  const StateSpace space(p);
  const store::PackedLayout layout(p);
  // Tiny expected size forces many grow() cycles.
  store::ConcurrentPackedSet set(layout, 0, 5, /*expected=*/4);
  std::vector<std::uint64_t> words(layout.words());
  State s(1);
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, s);
    layout.pack(s, words.data());
    set.insert(words.data());
  }
  EXPECT_EQ(set.size(), space.size());
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, s);
    layout.pack(s, words.data());
    EXPECT_TRUE(set.contains(words.data()));
  }
}

// This is the test the CI TSan job leans on: concurrent interning of
// overlapping key ranges from several threads must be race-free and lose
// no state.
TEST(ConcurrentPackedSetTest, ConcurrentInsertsAreRaceFreeAndComplete) {
  const Program p = small_program();
  const StateSpace space(p);
  const store::PackedLayout layout(p);
  store::ConcurrentPackedSet set(layout, /*shard_bits=*/4, /*seed=*/7);

  constexpr unsigned kThreads = 8;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<std::uint64_t> words(layout.words());
      State s(p.num_variables());
      // Every thread inserts the full space, offset so threads collide on
      // different codes at different times.
      for (std::uint64_t i = 0; i < space.size(); ++i) {
        const std::uint64_t code = (i + t * 13) % space.size();
        space.decode_into(code, s);
        layout.pack(s, words.data());
        const auto [id, fresh] = set.insert(words.data());
        ASSERT_TRUE(equal(layout, set.get(id), words.data()));
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(set.size(), space.size());
  std::set<std::uint64_t> ids;
  std::vector<std::uint64_t> words(layout.words());
  State s(p.num_variables());
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, s);
    layout.pack(s, words.data());
    const auto id = set.find(words.data());
    ASSERT_TRUE(id.has_value());
    ids.insert(*id);
  }
  EXPECT_EQ(ids.size(), space.size());  // ids are distinct
}

// ------------------------------------------------------------ bit arrays

TEST(AtomicBitSetTest, FirstSetterWins) {
  store::AtomicBitSet bits(200);
  for (std::uint64_t i = 0; i < 200; ++i) EXPECT_FALSE(bits.test(i));
  EXPECT_TRUE(bits.test_and_set(63));
  EXPECT_FALSE(bits.test_and_set(63));
  EXPECT_TRUE(bits.test(63));
  EXPECT_FALSE(bits.test(64));
  EXPECT_TRUE(bits.test_and_set(64));
  EXPECT_TRUE(bits.test(64));
}

TEST(TwoBitArrayTest, HoldsAllFourValuesWithoutNeighborInterference) {
  store::TwoBitArray arr(100);
  for (std::uint64_t i = 0; i < 100; ++i) {
    arr.set(i, static_cast<std::uint8_t>(i % 4));
  }
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(arr[i], i % 4) << i;
  }
  arr.set(33, 3);
  arr.set(33, 0);
  EXPECT_EQ(arr[33], 0);
  EXPECT_EQ(arr[32], 0u);
  EXPECT_EQ(arr[34], 2u);
}

TEST(StampedDistanceArrayTest, GenerationAdvanceInvalidatesInO1) {
  store::StampedDistanceArray dist(10);
  EXPECT_FALSE(dist.known(3));
  EXPECT_EQ(dist.get(3), store::StampedDistanceArray::kUnset);
  dist.set(3, 7);
  EXPECT_TRUE(dist.known(3));
  EXPECT_EQ(dist.get(3), 7u);
  dist.next_generation();
  EXPECT_FALSE(dist.known(3));
  EXPECT_EQ(dist.get(3), store::StampedDistanceArray::kUnset);
  dist.set(3, 1);
  EXPECT_EQ(dist.get(3), 1u);
}

// -------------------------------------------------------------- odometer

TEST(OdometerCursorTest, MatchesDecodeForEveryCode) {
  const Program p = small_program();
  const StateSpace space(p);
  store::OdometerCursor cur(space, 0);
  State expect(p.num_variables());
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, expect);
    ASSERT_EQ(cur.code(), code);
    ASSERT_EQ(cur.state(), expect) << "code " << code;
    if (code + 1 < space.size()) cur.advance();
  }
}

TEST(OdometerCursorTest, StartsMidRange) {
  const Program p = small_program();
  const StateSpace space(p);
  const std::uint64_t start = space.size() / 2;
  store::OdometerCursor cur(space, start);
  EXPECT_EQ(cur.code(), start);
  EXPECT_EQ(cur.state(), space.decode(start));
  cur.advance();
  EXPECT_EQ(cur.state(), space.decode(start + 1));
}

// -------------------------------------------------------------- frontier

TEST(SpillableFrontierTest, InMemoryRoundTrip) {
  store::SpillableFrontier f(/*threshold=*/0, "");
  for (std::uint64_t i = 0; i < 100; ++i) f.append(i * 3);
  EXPECT_EQ(f.size(), 100u);
  EXPECT_FALSE(f.spilled());
  std::vector<std::uint64_t> out;
  f.read(10, 20, out);
  ASSERT_EQ(out.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(out[i], (10 + i) * 3);
  f.clear();
  EXPECT_EQ(f.size(), 0u);
}

TEST(SpillableFrontierTest, SpillsToDiskAndReadsAcrossTheBoundary) {
  store::SpillableFrontier f(/*threshold=*/16, "");
  for (std::uint64_t i = 0; i < 100; ++i) f.append(i * 7 + 1);
  EXPECT_EQ(f.size(), 100u);
  EXPECT_TRUE(f.spilled());

  std::vector<std::uint64_t> out;
  f.read(0, 100, out);  // spans disk and memory
  ASSERT_EQ(out.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(out[i], i * 7 + 1);

  f.read(90, 100, out);  // pure tail
  ASSERT_EQ(out.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(out[i], (90 + i) * 7 + 1);

  f.clear();
  EXPECT_EQ(f.size(), 0u);
  for (std::uint64_t i = 0; i < 5; ++i) f.append(i);
  f.read(0, 5, out);
  ASSERT_EQ(out.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(out[i], i);
}

// Count directory entries other than "." / ".." — the spill file is
// mkstemp'd and unlinked immediately, so a correctly-anonymous spill never
// leaves a visible entry, even while the frontier is live.
int visible_entries(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return -1;
  int n = 0;
  while (const dirent* e = ::readdir(d)) {
    if (std::strcmp(e->d_name, ".") != 0 && std::strcmp(e->d_name, "..") != 0) {
      ++n;
    }
  }
  ::closedir(d);
  return n;
}

TEST(SpillableFrontierTest, SpillFileIsAnonymousSoCrashesLeaveNoDebris) {
  char tmpl[] = "/tmp/nonmask-spill-test-XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  {
    store::SpillableFrontier f(/*threshold=*/4, dir);
    for (std::uint64_t i = 0; i < 64; ++i) f.append(i * 11);
    ASSERT_TRUE(f.spilled());
    // The flush already happened, yet the directory shows nothing: the
    // backing file was unlinked at creation, so a crash at any later
    // point cannot strand a spill file for an operator to clean up.
    EXPECT_EQ(visible_entries(dir), 0);
    // The anonymous file still serves reads for the frontier's lifetime.
    std::vector<std::uint64_t> out;
    f.read(0, 64, out);
    ASSERT_EQ(out.size(), 64u);
    for (std::uint64_t i = 0; i < 64; ++i) EXPECT_EQ(out[i], i * 11);
  }
  EXPECT_EQ(visible_entries(dir), 0);
  EXPECT_EQ(::rmdir(dir.c_str()), 0);
}

TEST(SpillableFrontierTest, ClearAfterSpillRestartsFromEmpty) {
  store::SpillableFrontier f(/*threshold=*/4, "");
  for (std::uint64_t i = 0; i < 32; ++i) f.append(i);
  ASSERT_TRUE(f.spilled());
  f.clear();
  EXPECT_EQ(f.size(), 0u);
  EXPECT_FALSE(f.spilled());
  // Refill past the threshold again: offsets restart at zero, so the
  // truncated file must not leak stale codes into the new contents.
  for (std::uint64_t i = 0; i < 32; ++i) f.append(100 + i);
  ASSERT_TRUE(f.spilled());
  std::vector<std::uint64_t> out;
  f.read(0, 32, out);
  ASSERT_EQ(out.size(), 32u);
  for (std::uint64_t i = 0; i < 32; ++i) EXPECT_EQ(out[i], 100 + i);
}

store::StoreConfig engine_config(unsigned threads,
                                 std::uint64_t spill_threshold = 0) {
  store::StoreConfig cfg;
  cfg.backend = store::StoreBackend::kStore;
  cfg.threads = threads;
  cfg.grain = 64;  // small grain so the tiny spaces exercise many chunks
  cfg.shard_bits = 2;
  cfg.spill_threshold = spill_threshold;
  return cfg;
}

void expect_same_set(const StateSet& a, const StateSet& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::uint64_t code = 0; code < a.space().size(); ++code) {
    ASSERT_EQ(a.contains_code(code), b.contains_code(code)) << "code " << code;
  }
}

TEST(FrontierEngineTest, ReachableMatchesSerialReference) {
  const auto dd = make_diffusing(RootedTree::balanced(3, 2), true);
  const StateSpace space(dd.design.program);
  const auto actions = non_fault_actions(dd.design.program);
  const StateSet expect =
      compute_reachable(space, dd.design.S(), actions);

  for (unsigned threads : {1u, 2u, 8u}) {
    store::FrontierEngine engine(space, engine_config(threads));
    const StateSet got = engine.reachable(dd.design.S(), actions);
    expect_same_set(expect, got);
  }
}

TEST(FrontierEngineTest, ReachableHonorsMaxStatesCapIdentically) {
  const auto dd = make_diffusing(RootedTree::balanced(3, 2), true);
  const StateSpace space(dd.design.program);
  const auto actions = non_fault_actions(dd.design.program);
  FaultSpanOptions opts;
  opts.max_states = 37;
  const StateSet expect =
      compute_reachable(space, dd.design.S(), actions, opts);

  for (unsigned threads : {1u, 4u}) {
    store::FrontierEngine engine(space, engine_config(threads));
    const StateSet got = engine.reachable(dd.design.S(), actions, opts);
    expect_same_set(expect, got);
  }
}

TEST(FrontierEngineTest, SpillingDoesNotChangeTheAnswer) {
  const auto dd = make_dijkstra_ring(4, 5);
  const StateSpace space(dd.design.program);
  const auto actions = non_fault_actions(dd.design.program);
  const StateSet expect =
      compute_reachable(space, dd.design.S(), actions);

  // Threshold 8 forces nearly every level through the temp file.
  store::FrontierEngine engine(space, engine_config(2, /*spill=*/8));
  const StateSet got = engine.reachable(dd.design.S(), actions);
  expect_same_set(expect, got);
  EXPECT_GT(engine.stats().spills, 0u);
}

// Byte-identity must also hold when spilling interacts with max_states
// truncation: every threshold (from spill-every-append up) must stop at
// exactly the same state as the in-memory run.
TEST(FrontierEngineTest, SpillingPreservesCapTruncationPoint) {
  const auto dd = make_dijkstra_ring(4, 5);
  const StateSpace space(dd.design.program);
  const auto actions = non_fault_actions(dd.design.program);
  FaultSpanOptions opts;
  opts.max_states = 211;
  const StateSet expect =
      compute_reachable(space, dd.design.S(), actions, opts);

  for (std::uint64_t threshold : {std::uint64_t{1}, std::uint64_t{4},
                                  std::uint64_t{64}}) {
    store::FrontierEngine engine(space, engine_config(2, threshold));
    const StateSet got = engine.reachable(dd.design.S(), actions, opts);
    expect_same_set(expect, got);
  }
}

TEST(FrontierEngineTest, FaultSpanMatchesSerialReference) {
  const auto dd = make_dijkstra_ring(3, 4);
  const StateSpace space(dd.design.program);
  const auto faults = dd.design.program.actions_of_kind(ActionKind::kFault);
  const StateSet expect = compute_fault_span(space, dd.design.S(), faults);

  auto actions = non_fault_actions(dd.design.program);
  actions.insert(actions.end(), faults.begin(), faults.end());
  store::FrontierEngine engine(space, engine_config(2));
  const StateSet got = engine.reachable(dd.design.S(), actions);
  expect_same_set(expect, got);
}

TEST(FrontierEngineTest, BackwardDistancesAreExactMinSteps) {
  const auto dd = make_dijkstra_ring(3, 4);
  const StateSpace space(dd.design.program);
  const auto actions = non_fault_actions(dd.design.program);
  const PredicateFn S = dd.design.S();

  // Serial reference: multi-source BFS over explicitly reversed edges.
  constexpr std::uint32_t kInf = ~std::uint32_t{0};
  std::vector<std::uint32_t> expect(space.size(), kInf);
  std::vector<std::vector<std::uint64_t>> preds(space.size());
  {
    State s(space.program().num_variables());
    std::vector<std::uint64_t> succs;
    std::vector<std::uint64_t> queue;
    for (std::uint64_t code = 0; code < space.size(); ++code) {
      detail::expand_reachable(space, actions, {}, code, s, succs);
      std::sort(succs.begin(), succs.end());
      succs.erase(std::unique(succs.begin(), succs.end()), succs.end());
      for (std::uint64_t t : succs) preds[t].push_back(code);
      space.decode_into(code, s);
      if (S(s)) {
        expect[code] = 0;
        queue.push_back(code);
      }
    }
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::uint64_t code = queue[head];
      for (std::uint64_t prev : preds[code]) {
        if (expect[prev] == kInf) {
          expect[prev] = expect[code] + 1;
          queue.push_back(prev);
        }
      }
    }
  }

  for (unsigned threads : {1u, 4u}) {
    store::FrontierEngine engine(space, engine_config(threads));
    store::StampedDistanceArray dist(space.size());
    const std::uint64_t resolved =
        engine.backward_distances(S, actions, dist);
    std::uint64_t expect_resolved = 0;
    for (std::uint64_t code = 0; code < space.size(); ++code) {
      if (expect[code] != kInf) {
        ++expect_resolved;
        ASSERT_EQ(dist.get(code), expect[code]) << "code " << code;
      } else {
        ASSERT_FALSE(dist.known(code)) << "code " << code;
      }
    }
    EXPECT_EQ(resolved, expect_resolved);
  }
}

TEST(StoreConfigTest, FromEnvAcceptsBothBackendNames) {
  // "store" and the explicit "dense" are both valid; anything else falls
  // back to dense (with a one-time warning, not silently).
  ::setenv("NONMASK_STORE_BACKEND", "store", 1);
  EXPECT_EQ(store::StoreConfig::from_env().backend,
            store::StoreBackend::kStore);
  ::setenv("NONMASK_STORE_BACKEND", "dense", 1);
  EXPECT_EQ(store::StoreConfig::from_env().backend,
            store::StoreBackend::kLegacyDense);
  ::setenv("NONMASK_STORE_BACKEND", "", 1);
  EXPECT_EQ(store::StoreConfig::from_env().backend,
            store::StoreBackend::kLegacyDense);
  ::setenv("NONMASK_STORE_BACKEND", "compact", 1);  // typo -> dense + warn
  EXPECT_EQ(store::StoreConfig::from_env().backend,
            store::StoreBackend::kLegacyDense);
  ::unsetenv("NONMASK_STORE_BACKEND");
  EXPECT_EQ(store::StoreConfig::from_env().backend,
            store::StoreBackend::kLegacyDense);
}

TEST(StoreConfigTest, FromEnvParsesBudget) {
  ::setenv("NONMASK_STATE_BUDGET", "123456", 1);
  EXPECT_EQ(store::StoreConfig::from_env().budget, 123456u);
  ::unsetenv("NONMASK_STATE_BUDGET");
  EXPECT_EQ(store::StoreConfig::from_env().budget, 32'000'000u);
}

TEST(FrontierEngineTest, BackwardDistancesRespectRoundCap) {
  const auto dd = make_dijkstra_ring(3, 4);
  const StateSpace space(dd.design.program);
  const auto actions = non_fault_actions(dd.design.program);
  store::FrontierEngine engine(space, engine_config(1));
  store::StampedDistanceArray dist(space.size());
  engine.backward_distances(dd.design.S(), actions, dist, /*max_rounds=*/1);
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    if (dist.known(code)) {
      EXPECT_LE(dist.get(code), 1u);
    }
  }
}

}  // namespace
}  // namespace nonmask
