// TMR and the paper's masking/nonmasking classification (Section 3).
#include <gtest/gtest.h>

#include "checker/closure_check.hpp"
#include "checker/convergence_check.hpp"
#include "checker/fault_span.hpp"
#include "checker/state_space.hpp"
#include "engine/simulator.hpp"
#include "protocols/tmr.hpp"
#include "sched/daemons.hpp"

namespace nonmask {
namespace {

TEST(TmrTest, MaskingVariantClassifiesAsMasking) {
  const auto tmr = make_tmr(/*masking=*/true);
  StateSpace space(tmr.design.program);
  EXPECT_EQ(classify_tolerance(space, tmr.design), ToleranceClass::kMasking);
}

TEST(TmrTest, NonmaskingVariantClassifiesAsNonmasking) {
  const auto tmr = make_tmr(/*masking=*/false);
  StateSpace space(tmr.design.program);
  EXPECT_EQ(classify_tolerance(space, tmr.design),
            ToleranceClass::kNonmasking);
}

TEST(TmrTest, BrokenDesignClassifiesAsNotTolerant) {
  auto tmr = make_tmr(false);
  // Widen T to everything: convergence from garbage replica states fails
  // (no majority -> repair actions are disabled -> deadlock outside S).
  tmr.design.fault_span = true_predicate();
  StateSpace space(tmr.design.program);
  EXPECT_EQ(classify_tolerance(space, tmr.design),
            ToleranceClass::kNotTolerant);
}

TEST(TmrTest, FaultSpansClosedUnderProgramAndFaults) {
  for (const bool masking : {true, false}) {
    const auto tmr = make_tmr(masking);
    StateSpace space(tmr.design.program);
    EXPECT_TRUE(check_closed(space, tmr.design.T()).closed) << masking;
    EXPECT_TRUE(
        check_closed(space, tmr.design.T(), tmr.fault_actions).closed)
        << masking;
    EXPECT_TRUE(check_closed(space, tmr.design.S()).closed) << masking;
  }
}

TEST(TmrTest, MaskingFaultsNeverExposeNonSStates) {
  // The definitional property: within the masking design's fault class,
  // every fault strikes an S state and lands in an S state.
  const auto tmr = make_tmr(true);
  StateSpace space(tmr.design.program);
  const auto S = tmr.design.S();
  State s(tmr.design.program.num_variables());
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, s);
    for (std::size_t f : tmr.fault_actions) {
      const auto& fa = tmr.design.program.action(f);
      if (!fa.enabled(s)) continue;
      EXPECT_TRUE(S(s));
      EXPECT_TRUE(S(fa.apply(s)));
    }
  }
}

TEST(TmrTest, NonmaskingOutputGlitchIsObservableThenRepaired) {
  const auto tmr = make_tmr(false);
  const Design& d = tmr.design;
  const auto S = d.S();
  State s = d.program.initial_state();
  // Bring the system into S first.
  for (const VarId v : tmr.replica) s.set(v, tmr.reference);
  s.set(tmr.out, tmr.reference);
  ASSERT_TRUE(S(s));
  // Corrupt the output: S violated (the glitch a reader could observe).
  const auto& fault = d.program.action(tmr.fault_actions.back());
  ASSERT_TRUE(fault.enabled(s));
  fault.execute(s);
  EXPECT_FALSE(S(s));
  EXPECT_TRUE(d.T()(s));
  // The voter repairs it.
  RandomDaemon daemon(3);
  const auto r = converge(d, s, daemon);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.final_state.get(tmr.out), tmr.reference);
}

TEST(TmrTest, InducedSpanMatchesDeclaredT) {
  for (const bool masking : {true, false}) {
    const auto tmr = make_tmr(masking);
    StateSpace space(tmr.design.program);
    const auto span =
        compute_fault_span(space, tmr.design.S(), tmr.fault_actions);
    // The declared T must contain the induced span (it may be larger).
    const auto T = tmr.design.T();
    State s(tmr.design.program.num_variables());
    for (std::uint64_t code = 0; code < space.size(); ++code) {
      if (!span.contains_code(code)) continue;
      space.decode_into(code, s);
      EXPECT_TRUE(T(s)) << masking << " "
                        << tmr.design.program.format_state(s);
    }
  }
}

TEST(TmrTest, ConstructorValidation) {
  EXPECT_THROW(make_tmr(true, 0), std::invalid_argument);
  EXPECT_THROW(make_tmr(true, 3, 9), std::invalid_argument);
}

}  // namespace
}  // namespace nonmask
