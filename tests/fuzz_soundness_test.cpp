// Fuzzed soundness of the theorem validators: across randomly generated
// designs — clean copy-tree designs, designs with random interfering
// closure actions, and designs with cyclic dependency structure — whenever
// a validator (with exhaustive obligations) says a theorem APPLIES, the
// exact checker must confirm convergence. Clean out-tree designs must also
// always be accepted (completeness on the easy fragment).
#include <gtest/gtest.h>

#include <string>

#include "cgraph/theorems.hpp"
#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "core/builder.hpp"
#include "util/rng.hpp"

namespace nonmask {
namespace {

/// A random "copy-tree" design: variables v0..v{k-1}; for each i > 0 a
/// constraint v_i == f_i(v_{p(i)}) with p(i) < i (tree) or sometimes
/// p(i) != i arbitrary (cyclic variant), where f_i is a random function
/// encoded as a permutation-ish affine map on the domain. The convergence
/// action is ¬c -> v_i := f_i(v_{p(i)}).
struct FuzzCase {
  Design design;
  bool tree_shaped;  ///< dependencies point strictly downward
};

FuzzCase make_fuzz_case(std::uint64_t seed) {
  Rng rng(seed);
  const int k = 3 + static_cast<int>(rng.below(3));        // 3..5 variables
  const Value hi = 1 + static_cast<Value>(rng.below(3));   // domains 2..4
  const bool tree_shaped = rng.chance(0.6);
  const bool add_vandal = rng.chance(0.4);

  ProgramBuilder b("fuzz-" + std::to_string(seed));
  std::vector<VarId> v;
  for (int i = 0; i < k; ++i) {
    v.push_back(b.var("v" + std::to_string(i), 0, hi));
  }

  Invariant inv;
  for (int i = 1; i < k; ++i) {
    int p;
    if (tree_shaped) {
      p = static_cast<int>(rng.below(static_cast<std::uint64_t>(i)));
    } else {
      do {
        p = static_cast<int>(rng.below(static_cast<std::uint64_t>(k)));
      } while (p == i);
    }
    const Value a = 1 + static_cast<Value>(rng.below(static_cast<std::uint64_t>(hi)));
    const Value c0 = static_cast<Value>(rng.below(static_cast<std::uint64_t>(hi) + 1));
    const Value mod = hi + 1;
    auto f = [a, c0, mod](Value x) { return (a * x + c0) % mod; };

    const VarId vi = v[static_cast<std::size_t>(i)];
    const VarId vp = v[static_cast<std::size_t>(p)];
    auto ok = [vi, vp, f](const State& s) {
      return s.get(vi) == f(s.get(vp));
    };
    const auto cid = inv.add(Constraint{
        "v" + std::to_string(i) + "=f(v" + std::to_string(p) + ")", ok,
        {vi, vp}});
    b.convergence(
        "fix" + std::to_string(i),
        [ok](const State& s) { return !ok(s); },
        [vi, vp, f](State& s) { s.set(vi, f(s.get(vp))); }, {vi, vp}, {vi},
        static_cast<int>(cid));
  }

  if (add_vandal) {
    // A closure action that rewrites a random variable when some guard
    // holds; it may or may not preserve the constraints — the validators
    // must sort that out.
    const int t = static_cast<int>(rng.below(static_cast<std::uint64_t>(k)));
    const VarId vt = v[static_cast<std::size_t>(t)];
    const Value val = static_cast<Value>(rng.below(static_cast<std::uint64_t>(hi) + 1));
    const Value trigger = static_cast<Value>(rng.below(static_cast<std::uint64_t>(hi) + 1));
    const VarId watch = v[static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(k)))];
    b.closure(
        "vandal",
        [watch, trigger, vt, val](const State& s) {
          return s.get(watch) == trigger && s.get(vt) != val;
        },
        [vt, val](State& s) { s.set(vt, val); }, {watch, vt}, {vt});
  }

  FuzzCase fc;
  fc.design.name = b.peek().name();
  fc.design.program = b.build();
  fc.design.invariant = std::move(inv);
  fc.design.fault_span = true_predicate();
  fc.tree_shaped = tree_shaped;
  return fc;
}

class FuzzSoundnessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSoundnessTest, ValidatorAcceptanceImpliesConvergence) {
  const auto fc = make_fuzz_case(GetParam());
  StateSpace space(fc.design.program);
  ValidationOptions opts;
  opts.space = &space;

  const auto report = validate_design(fc.design, opts);
  const auto exact = check_convergence(space, fc.design.S(), fc.design.T());

  if (report.applies) {
    EXPECT_EQ(exact.verdict, ConvergenceVerdict::kConverges)
        << fc.design.name << "\n"
        << format_report(report);
  }
}

TEST_P(FuzzSoundnessTest, CleanTreeDesignsAreAccepted) {
  const auto fc = make_fuzz_case(GetParam());
  if (!fc.tree_shaped) return;
  // Strip any vandal closure action: the clean candidate must validate.
  Design clean;
  clean.name = fc.design.name + "-clean";
  clean.program = Program(clean.name);
  for (const auto& var : fc.design.program.variables()) {
    clean.program.add_variable(var);
  }
  for (const auto& a : fc.design.program.actions()) {
    if (a.kind() == ActionKind::kConvergence) clean.program.add_action(a);
  }
  clean.invariant = fc.design.invariant;
  clean.fault_span = true_predicate();

  StateSpace space(clean.program);
  ValidationOptions opts;
  opts.space = &space;
  const auto report = validate_design(clean, opts);
  EXPECT_TRUE(report.applies) << clean.name << "\n" << format_report(report);
  EXPECT_EQ(check_convergence(space, clean.S(), clean.T()).verdict,
            ConvergenceVerdict::kConverges);
}

TEST_P(FuzzSoundnessTest, SampledValidatorNeverContradictsExhaustive) {
  // Sampling can only *miss* violations (accept too much); it must never
  // reject a design the exhaustive validator accepts (same obligations,
  // fewer states).
  const auto fc = make_fuzz_case(GetParam());
  StateSpace space(fc.design.program);
  ValidationOptions exhaustive;
  exhaustive.space = &space;
  ValidationOptions sampled;
  sampled.samples = 5000;
  const auto ex = validate_design(fc.design, exhaustive);
  const auto sa = validate_design(fc.design, sampled);
  if (ex.applies) {
    EXPECT_TRUE(sa.applies) << fc.design.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSoundnessTest,
                         ::testing::Range<std::uint64_t>(0, 60));

}  // namespace
}  // namespace nonmask
