// Section 7's refined analyses: convergence stairs (Gouda–Multari),
// restricted constraint graphs, and automatic Theorem-3 layering.
#include <gtest/gtest.h>

#include "cgraph/refine.hpp"
#include "checker/stair.hpp"
#include "checker/state_space.hpp"
#include "core/builder.hpp"
#include "protocols/coloring.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/leader_election.hpp"
#include "protocols/running_example.hpp"
#include "protocols/token_ring.hpp"

namespace nonmask {
namespace {

// The token ring's own two-stage structure: stage 1 establishes the first
// conjunct (non-increasing), stage 2 reaches S. This is precisely the
// "convergence stair of height two" the paper cites.
TEST(StairTest, TokenRingStairOfHeightTwo) {
  const auto tr = make_token_ring_bounded(4, 3, true);
  const Design& d = tr.design;
  StateSpace space(d.program);

  auto non_increasing = [x = tr.x](const State& s) {
    for (std::size_t j = 0; j + 1 < x.size(); ++j) {
      if (s.get(x[j]) < s.get(x[j + 1])) return false;
    }
    return true;
  };
  const auto report = check_stair(
      space, d.T(),
      {StatePredicate{"non-increasing", non_increasing},
       StatePredicate{"S", d.S()}});
  EXPECT_TRUE(report.valid) << report.failure;
  ASSERT_EQ(report.steps.size(), 2u);
  EXPECT_TRUE(report.steps[0].closed);
  EXPECT_GT(report.total_worst_case, 0u);
}

TEST(StairTest, RejectsNonClosedStep) {
  const auto tr = make_token_ring_bounded(3, 3, true);
  StateSpace space(tr.design.program);
  // "x.0 == 0" is not closed (the root increments).
  auto x0_zero = [x0 = tr.x[0]](const State& s) { return s.get(x0) == 0; };
  const auto report = check_stair(
      space, tr.design.T(),
      {StatePredicate{"x0=0", p_and(x0_zero, tr.design.S())}});
  EXPECT_FALSE(report.valid);
  EXPECT_NE(report.failure.find("not closed"), std::string::npos);
}

TEST(StairTest, RejectsBrokenSubsetChain) {
  const auto tr = make_token_ring_bounded(3, 3, true);
  StateSpace space(tr.design.program);
  // Second step not inside the first.
  auto a = [x0 = tr.x[0]](const State& s) { return s.get(x0) == 0; };
  auto b = [x0 = tr.x[0]](const State& s) { return s.get(x0) == 1; };
  const auto report = check_stair(space, tr.design.T(),
                                  {StatePredicate{"a", a},
                                   StatePredicate{"b", b}});
  EXPECT_FALSE(report.valid);
  EXPECT_NE(report.failure.find("not inside"), std::string::npos);
}

TEST(StairTest, EmptyStairRejected) {
  const auto tr = make_token_ring_bounded(3, 3, true);
  StateSpace space(tr.design.program);
  EXPECT_FALSE(check_stair(space, tr.design.T(), {}).valid);
}

TEST(StairTest, SingleStepStairEqualsPlainConvergence) {
  const Design d = make_running_example(RunningExampleVariant::kWriteYZ);
  StateSpace space(d.program);
  const auto report =
      check_stair(space, d.T(), {StatePredicate{"S", d.S()}});
  EXPECT_TRUE(report.valid) << report.failure;
  EXPECT_EQ(report.total_worst_case, 2u);
}

// Restriction (Section 7, first possibility): once the diffusing
// computation's constraints hold on a subtree prefix, those edges drop out
// of the restricted graph.
TEST(RestrictTest, SatisfiedConstraintsDropOut) {
  const auto dd = make_diffusing(RootedTree::chain(3), false);
  const Design& d = dd.design;
  StateSpace space(d.program);
  ValidationOptions opts;
  opts.space = &space;
  const auto cg = infer_constraint_graph(d.program);
  ASSERT_TRUE(cg.ok);
  ASSERT_EQ(cg.graph.graph.num_edges(), 2);

  // Restrict to S: every constraint holds, so every edge drops.
  const auto restricted_s =
      restrict_constraint_graph(d, cg.graph, d.S(), opts);
  EXPECT_EQ(restricted_s.graph.graph.num_edges(), 0);
  EXPECT_EQ(restricted_s.dropped.size(), 2u);

  // Restrict to R.1 only: the R.1 edge drops, R.2's survives.
  const auto restricted_r1 = restrict_constraint_graph(
      d, cg.graph, d.invariant.at(0).fn, opts);
  EXPECT_EQ(restricted_r1.graph.graph.num_edges(), 1);
  EXPECT_EQ(restricted_r1.dropped.size(), 1u);

  // Restrict to true: nothing drops.
  const auto restricted_true =
      restrict_constraint_graph(d, cg.graph, true_predicate(), opts);
  EXPECT_EQ(restricted_true.graph.graph.num_edges(), 2);
}

TEST(SuggestLayersTest, ColoringLayersValidate) {
  const auto g = UndirectedGraph::grid(2, 2);
  const auto cd = make_coloring(g);
  StateSpace space(cd.design.program);
  ValidationOptions opts;
  opts.space = &space;
  const auto layers = suggest_layers(cd.design, opts);
  ASSERT_TRUE(layers.has_value());
  const auto report = validate_theorem3(cd.design, *layers, opts);
  EXPECT_TRUE(report.applies) << format_report(report);
}

TEST(SuggestLayersTest, LeaderElectionLayersValidate) {
  const auto le = make_leader_election(4);
  StateSpace space(le.design.program);
  ValidationOptions opts;
  opts.space = &space;
  const auto layers = suggest_layers(le.design, opts);
  ASSERT_TRUE(layers.has_value());
  const auto report = validate_theorem3(le.design, *layers, opts);
  EXPECT_TRUE(report.applies) << format_report(report);
}

TEST(SuggestLayersTest, MutualBreakersAcrossNodesRejected) {
  // kWriteXBoth: both convergence actions write {x} — same target node —
  // so suggest_layers does not reject on that ground; it may propose a
  // single layer, which Theorem 3 then rejects for want of a linear order.
  const Design d = make_running_example(RunningExampleVariant::kWriteXBoth);
  StateSpace space(d.program);
  ValidationOptions opts;
  opts.space = &space;
  const auto layers = suggest_layers(d, opts);
  if (layers.has_value()) {
    const auto report = validate_theorem3(d, *layers, opts);
    EXPECT_FALSE(report.applies);
  }
}

TEST(SuggestLayersTest, RespectsBreaksOrder) {
  // kDecreaseX: fix-leq breaks fix-neq's constraint, so fix-leq must land
  // in a layer no higher than fix-neq's.
  const Design d = make_running_example(RunningExampleVariant::kDecreaseX);
  StateSpace space(d.program);
  ValidationOptions opts;
  opts.space = &space;
  const auto layers = suggest_layers(d, opts);
  ASSERT_TRUE(layers.has_value());
  int layer_of_leq = -1, layer_of_neq = -1;
  for (std::size_t l = 0; l < layers->size(); ++l) {
    for (std::size_t idx : (*layers)[l]) {
      const auto& name = d.program.action(idx).name();
      if (name.rfind("fix-leq", 0) == 0) layer_of_leq = static_cast<int>(l);
      if (name.rfind("fix-neq", 0) == 0) layer_of_neq = static_cast<int>(l);
    }
  }
  ASSERT_GE(layer_of_leq, 0);
  ASSERT_GE(layer_of_neq, 0);
  EXPECT_LE(layer_of_leq, layer_of_neq);
}

}  // namespace
}  // namespace nonmask
