// Unit tests for constraint-graph construction (explicit and inferred),
// classification, and ranks — including E1: the paper's Section 4 figure.
#include <gtest/gtest.h>

#include "cgraph/classify.hpp"
#include "cgraph/constraint_graph.hpp"
#include "core/builder.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/running_example.hpp"

namespace nonmask {
namespace {

// E1: the running example with convergence actions writing y and z yields
// the paper's figure — the out-tree {x} -> {y}, {x} -> {z}.
TEST(ConstraintGraphTest, PaperFigureIsOutTree) {
  const Design d = make_running_example(RunningExampleVariant::kWriteYZ);
  const auto result = infer_constraint_graph(d.program);
  ASSERT_TRUE(result.ok) << result.error;
  const ConstraintGraph& cg = result.graph;

  EXPECT_EQ(cg.graph.num_nodes(), 3);
  EXPECT_EQ(cg.graph.num_edges(), 2);
  EXPECT_EQ(classify(cg), GraphShape::kOutTree);

  // The root node is labeled {x} and has out-degree 2.
  const VarId x = d.program.find_variable("x");
  const int root = cg.node_of(x);
  EXPECT_EQ(cg.graph.out_degree(root), 2);
  EXPECT_EQ(cg.graph.in_degree(root), 0);
  EXPECT_EQ(cg.describe_node(d.program, root), "{x}");

  const auto ranks = constraint_graph_ranks(cg);
  ASSERT_TRUE(ranks.has_value());
  EXPECT_EQ((*ranks)[static_cast<std::size_t>(root)], 1);
}

TEST(ConstraintGraphTest, WriteXVariantsShareTargetNode) {
  for (auto variant : {RunningExampleVariant::kWriteXBoth,
                       RunningExampleVariant::kDecreaseX}) {
    const Design d = make_running_example(variant);
    const auto result = infer_constraint_graph(d.program);
    ASSERT_TRUE(result.ok) << result.error;
    const ConstraintGraph& cg = result.graph;
    EXPECT_EQ(classify(cg), GraphShape::kSelfLooping);
    const VarId x = d.program.find_variable("x");
    EXPECT_EQ(cg.graph.in_degree(cg.node_of(x)), 2);
  }
}

TEST(ConstraintGraphTest, ExplicitPartitionMatchesInference) {
  const Design d = make_running_example(RunningExampleVariant::kWriteYZ);
  const VarId x = d.program.find_variable("x");
  const VarId y = d.program.find_variable("y");
  const VarId z = d.program.find_variable("z");
  const auto result = build_constraint_graph(
      d.program, d.program.actions_of_kind(ActionKind::kConvergence),
      {{x}, {y}, {z}});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(classify(result.graph), GraphShape::kOutTree);
}

TEST(ConstraintGraphTest, ExplicitPartitionRejectsOverlap) {
  const Design d = make_running_example(RunningExampleVariant::kWriteYZ);
  const VarId x = d.program.find_variable("x");
  const VarId y = d.program.find_variable("y");
  const VarId z = d.program.find_variable("z");
  const auto result = build_constraint_graph(
      d.program, d.program.actions_of_kind(ActionKind::kConvergence),
      {{x, y}, {y, z}});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("two partition groups"), std::string::npos);
}

TEST(ConstraintGraphTest, ExplicitPartitionRejectsUncoveredVariable) {
  const Design d = make_running_example(RunningExampleVariant::kWriteYZ);
  const VarId x = d.program.find_variable("x");
  const VarId y = d.program.find_variable("y");
  const auto result = build_constraint_graph(
      d.program, d.program.actions_of_kind(ActionKind::kConvergence),
      {{x}, {y}});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("not covered"), std::string::npos);
}

TEST(ConstraintGraphTest, ExplicitPartitionRejectsSplitWrites) {
  // One action writing variables placed in two different groups.
  ProgramBuilder b("split");
  const VarId a = b.var("a", 0, 1);
  const VarId c = b.var("c", 0, 1);
  b.convergence(
      "w2", true_predicate(),
      [a, c](State& s) {
        s.set(a, 0);
        s.set(c, 0);
      },
      {a, c}, {a, c}, 0);
  Program p = b.build();
  const auto result = build_constraint_graph(p, {0}, {{a}, {c}});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("two different nodes"), std::string::npos);
}

TEST(ConstraintGraphTest, ActionWithoutWritesRejected) {
  ProgramBuilder b("ro");
  const VarId a = b.var("a", 0, 1);
  b.convergence("read-only", true_predicate(), [](State&) {}, {a}, {}, 0);
  Program p = b.build();
  EXPECT_FALSE(infer_constraint_graph(p).ok);
}

TEST(ConstraintGraphTest, SelfLoopWhenReadsSubsetOfWrites) {
  ProgramBuilder b("self");
  const VarId a = b.var("a", 0, 3);
  b.convergence(
      "bump", [a](const State& s) { return s.get(a) > 0; },
      [a](State& s) { s.set(a, s.get(a) - 1); }, {a}, {a}, 0);
  Program p = b.build();
  const auto result = infer_constraint_graph(p);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.graph.graph.num_nodes(), 1);
  ASSERT_EQ(result.graph.graph.num_edges(), 1);
  EXPECT_EQ(result.graph.graph.edge(0).from, result.graph.graph.edge(0).to);
  EXPECT_EQ(classify(result.graph), GraphShape::kSelfLooping);
}

TEST(ConstraintGraphTest, InferenceMergesMultiNodeResidualReads) {
  // Action reads {a, b} and writes {c}: a and b must merge into one source.
  ProgramBuilder b("merge");
  const VarId a = b.var("a", 0, 1);
  const VarId bb = b.var("b", 0, 1);
  const VarId c = b.var("c", 0, 1);
  b.convergence(
      "combine", true_predicate(),
      [c](State& s) { s.set(c, 1); }, {a, bb}, {c}, 0);
  Program p = b.build();
  const auto result = infer_constraint_graph(p);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.graph.graph.num_nodes(), 2);
  EXPECT_EQ(result.graph.node_of(a), result.graph.node_of(bb));
  EXPECT_NE(result.graph.node_of(a), result.graph.node_of(c));
}

TEST(ConstraintGraphTest, DiffusingTreeGraphMirrorsTree) {
  // The diffusing computation's constraint graph is the process tree
  // itself: one node {c.j, sn.j} per process, one edge parent -> child.
  const auto tree = RootedTree::balanced(7, 2);
  const auto dd = make_diffusing(tree, /*combined=*/false);
  const auto result = infer_constraint_graph(dd.design.program);
  ASSERT_TRUE(result.ok) << result.error;
  const ConstraintGraph& cg = result.graph;
  EXPECT_EQ(cg.graph.num_nodes(), 7);
  EXPECT_EQ(cg.graph.num_edges(), 6);
  EXPECT_EQ(classify(cg), GraphShape::kOutTree);
  // Variables of one process share a node.
  for (int j = 0; j < 7; ++j) {
    EXPECT_EQ(cg.node_of(dd.color[static_cast<std::size_t>(j)]),
              cg.node_of(dd.session[static_cast<std::size_t>(j)]));
  }
  // Edge structure matches the tree: child node's in-edge from parent node.
  for (int j = 1; j < 7; ++j) {
    const int cnode = cg.node_of(dd.color[static_cast<std::size_t>(j)]);
    ASSERT_EQ(cg.graph.in_degree(cnode), 1);
    const auto& e = cg.graph.edge(cg.graph.in_edges(cnode)[0]);
    EXPECT_EQ(e.from,
              cg.node_of(dd.color[static_cast<std::size_t>(tree.parent(j))]));
  }
  // Ranks equal 1 + depth.
  const auto ranks = constraint_graph_ranks(cg);
  ASSERT_TRUE(ranks.has_value());
  for (int j = 0; j < 7; ++j) {
    const int node = cg.node_of(dd.color[static_cast<std::size_t>(j)]);
    EXPECT_EQ((*ranks)[static_cast<std::size_t>(node)], 1 + tree.depth(j));
  }
}

TEST(ConstraintGraphTest, ExplicitDiffusingPartitionWorks) {
  const auto tree = RootedTree::chain(4);
  const auto dd = make_diffusing(tree, /*combined=*/false);
  const auto result = build_constraint_graph(
      dd.design.program,
      dd.design.program.actions_of_kind(ActionKind::kConvergence),
      dd.partition());
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(classify(result.graph), GraphShape::kOutTree);
}

TEST(ClassifyTest, ShapeNames) {
  EXPECT_STREQ(to_string(GraphShape::kOutTree), "out-tree");
  EXPECT_STREQ(to_string(GraphShape::kSelfLooping), "self-looping");
  EXPECT_STREQ(to_string(GraphShape::kCyclic), "cyclic");
}

}  // namespace
}  // namespace nonmask
