// The golden round-trip: for every registry protocol, compile(emit(P))
// must reproduce the hand-coded Design declaration-for-declaration —
// same variables (names, domains, owners, order), same actions (names,
// kinds, constraint ids, read sets, and transition semantics on sampled
// states), same constraint decomposition — and the checker reports for the
// spec-born design must be BYTE-identical to the hand-coded ones at 1, 2,
// and 8 threads. This is the contract that lets a spec job stand in for
// the C++ path.
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "checker/state_space.hpp"
#include "core/candidate.hpp"
#include "obs/report.hpp"
#include "parallel/campaign.hpp"
#include "spec/compile.hpp"
#include "spec/emit.hpp"
#include "spec/registry.hpp"
#include "store/config.hpp"
#include "store/facade.hpp"

namespace nonmask {
namespace {

using spec::CompiledSpec;
using spec::RegistryEntry;
using spec::compile_spec_text;
using spec::emit_builtin_spec;
using spec::find_protocol;
using spec::registry;

std::vector<std::uint32_t> indices(const std::vector<VarId>& ids) {
  std::vector<std::uint32_t> out;
  out.reserve(ids.size());
  for (VarId id : ids) out.push_back(id.index());
  return out;
}

/// Uniform random in-domain states, fixed seed: the semantic sample.
std::vector<State> sample_states(const Program& p, std::size_t count) {
  std::mt19937_64 rng(0xBEEFu);
  std::vector<State> out;
  for (std::size_t i = 0; i < count; ++i) {
    State s(p.num_variables());
    for (std::size_t v = 0; v < p.num_variables(); ++v) {
      const VariableSpec& spec = p.variable(VarId(static_cast<unsigned>(v)));
      std::uniform_int_distribution<long long> dist(spec.lo, spec.hi);
      s.set(VarId(static_cast<unsigned>(v)),
            static_cast<Value>(dist(rng)));
    }
    out.push_back(std::move(s));
  }
  return out;
}

void expect_structurally_equal(const Design& got, const Design& want,
                               const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(got.program.name(), want.program.name());
  ASSERT_EQ(got.program.num_variables(), want.program.num_variables());
  for (std::size_t v = 0; v < want.program.num_variables(); ++v) {
    const auto& gv = got.program.variable(VarId(static_cast<unsigned>(v)));
    const auto& wv = want.program.variable(VarId(static_cast<unsigned>(v)));
    EXPECT_EQ(gv.name, wv.name) << "variable " << v;
    EXPECT_EQ(gv.lo, wv.lo) << gv.name;
    EXPECT_EQ(gv.hi, wv.hi) << gv.name;
    EXPECT_EQ(gv.process, wv.process) << gv.name;
  }
  ASSERT_EQ(got.program.num_actions(), want.program.num_actions());
  for (std::size_t a = 0; a < want.program.num_actions(); ++a) {
    const Action& ga = got.program.action(a);
    const Action& wa = want.program.action(a);
    EXPECT_EQ(ga.name(), wa.name()) << "action " << a;
    EXPECT_EQ(ga.kind(), wa.kind()) << ga.name();
    EXPECT_EQ(ga.constraint_id(), wa.constraint_id()) << ga.name();
    EXPECT_EQ(indices(ga.reads()), indices(wa.reads())) << ga.name();
  }
  ASSERT_EQ(got.invariant.size(), want.invariant.size());
  for (std::size_t c = 0; c < want.invariant.size(); ++c) {
    EXPECT_EQ(got.invariant.at(c).name, want.invariant.at(c).name)
        << "constraint " << c;
    EXPECT_EQ(indices(got.invariant.at(c).support),
              indices(want.invariant.at(c).support))
        << got.invariant.at(c).name;
  }
  EXPECT_EQ(got.stabilizing, want.stabilizing);
}

void expect_semantically_equal(const Design& got, const Design& want,
                               const std::string& label) {
  SCOPED_TRACE(label);
  const auto S_got = got.S();
  const auto S_want = want.S();
  const auto T_got = got.T();
  const auto T_want = want.T();
  for (const State& s : sample_states(want.program, 200)) {
    EXPECT_EQ(S_got(s), S_want(s));
    EXPECT_EQ(T_got(s), T_want(s));
    for (std::size_t c = 0; c < want.invariant.size(); ++c) {
      EXPECT_EQ(got.invariant.at(c).holds(s), want.invariant.at(c).holds(s))
          << want.invariant.at(c).name;
    }
    for (std::size_t a = 0; a < want.program.num_actions(); ++a) {
      const Action& ga = got.program.action(a);
      const Action& wa = want.program.action(a);
      ASSERT_EQ(ga.enabled(s), wa.enabled(s)) << wa.name();
      if (wa.enabled(s)) {
        EXPECT_EQ(ga.apply(s), wa.apply(s)) << wa.name();
      }
    }
  }
}

TEST(SpecRoundtripTest, EveryRegistryEntryRoundTripsStructurally) {
  ASSERT_FALSE(registry().empty());
  for (const RegistryEntry& entry : registry()) {
    const CompiledSpec cs = compile_spec_text(emit_builtin_spec(entry.name));
    const Design hand = entry.make();
    expect_structurally_equal(cs.design, hand, entry.name);
    expect_semantically_equal(cs.design, hand, entry.name);
  }
}

TEST(SpecRoundtripTest, FindProtocolResolvesEveryEntry) {
  for (const RegistryEntry& entry : registry()) {
    const RegistryEntry* found = find_protocol(entry.name);
    ASSERT_NE(found, nullptr) << entry.name;
    EXPECT_EQ(found->name, entry.name);
  }
  EXPECT_EQ(find_protocol("no-such-protocol"), nullptr);
  EXPECT_THROW(emit_builtin_spec("no-such-protocol"), std::invalid_argument);
}

// Exhaustive checker byte-identity. The smaller protocols run the full
// closure(S) + closure(T) + convergence battery at 1, 2, and 8 threads;
// the reports must serialize to the same bytes as the hand-coded design's.
void expect_reports_identical(const std::string& name) {
  SCOPED_TRACE(name);
  const RegistryEntry* entry = find_protocol(name);
  ASSERT_NE(entry, nullptr);
  const CompiledSpec cs = compile_spec_text(emit_builtin_spec(name));
  const Design hand = entry->make();
  const StateSpace space_spec(cs.design.program);
  const StateSpace space_hand(hand.program);
  ASSERT_EQ(space_spec.size(), space_hand.size());
  for (unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    store::StoreConfig config;
    config.threads = threads;
    const std::string closure_s_spec = obs::to_json(
        store::check_closed_via(config, space_spec, cs.design.S()));
    const std::string closure_s_hand =
        obs::to_json(store::check_closed_via(config, space_hand, hand.S()));
    EXPECT_EQ(closure_s_spec, closure_s_hand);
    const std::string closure_t_spec = obs::to_json(
        store::check_closed_via(config, space_spec, cs.design.T()));
    const std::string closure_t_hand =
        obs::to_json(store::check_closed_via(config, space_hand, hand.T()));
    EXPECT_EQ(closure_t_spec, closure_t_hand);
    const std::string conv_spec = obs::to_json(store::check_convergence_via(
        config, space_spec, cs.design.S(), cs.design.T()));
    const std::string conv_hand = obs::to_json(store::check_convergence_via(
        config, space_hand, hand.S(), hand.T()));
    EXPECT_EQ(conv_spec, conv_hand);
  }
}

TEST(SpecRoundtripTest, TokenRingReportsByteIdentical) {
  expect_reports_identical("token-ring");
  expect_reports_identical("token-ring-layered");
}

TEST(SpecRoundtripTest, DijkstraReportsByteIdentical) {
  expect_reports_identical("dijkstra-k-state-ring");
  expect_reports_identical("dijkstra-three-state");
  expect_reports_identical("dijkstra-four-state");
}

TEST(SpecRoundtripTest, TreeProtocolReportsByteIdentical) {
  expect_reports_identical("bfs-spanning-tree");
  expect_reports_identical("tree-aggregation");
  expect_reports_identical("distributed-reset");
}

TEST(SpecRoundtripTest, GraphProtocolReportsByteIdentical) {
  expect_reports_identical("stabilizing-coloring");
  expect_reports_identical("hsu-huang-matching");
  expect_reports_identical("maximal-independent-set");
  expect_reports_identical("ring-leader-election");
}

TEST(SpecRoundtripTest, SmallProtocolReportsByteIdentical) {
  expect_reports_identical("running-example-decrease-x");
  expect_reports_identical("atomic-action");
  expect_reports_identical("tmr-nonmasking");
}

// Campaign aggregates (the statistical path: random starts, random daemon,
// per-trial seed derivation) must also be byte-identical, at every thread
// count. This is what makes a spec campaign job a drop-in replacement for
// the hand-coded parallel_campaign run.
TEST(SpecRoundtripTest, TokenRingCampaignAggregateByteIdentical) {
  const RegistryEntry* entry = find_protocol("token-ring");
  ASSERT_NE(entry, nullptr);
  const CompiledSpec cs = compile_spec_text(emit_builtin_spec("token-ring"));
  const Design hand = entry->make();
  ConvergenceExperiment config;
  config.trials = 40;
  config.seed = 9;
  config.max_steps = 100000;
  std::string baseline;
  for (unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    CampaignOptions opts;
    opts.threads = threads;
    const CampaignResults spec_results = run_campaign(cs.design, config, opts);
    const CampaignResults hand_results = run_campaign(hand, config, opts);
    const std::string spec_json = obs::to_json(spec_results.aggregate);
    EXPECT_EQ(spec_json, obs::to_json(hand_results.aggregate));
    if (baseline.empty()) {
      baseline = spec_json;
    } else {
      EXPECT_EQ(spec_json, baseline);  // thread-count invariance
    }
  }
}

}  // namespace
}  // namespace nonmask
