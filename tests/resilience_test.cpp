// Tests for src/resilience/: adversarial fault-placement search, graceful
// degradation, the checkpoint journal, campaign resume, and the watchdog /
// retry trial policy.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/builder.hpp"
#include "core/predicate.hpp"
#include "engine/experiment.hpp"
#include "obs/report.hpp"
#include "parallel/campaign.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/token_ring.hpp"
#include "resilience/adversary.hpp"
#include "resilience/degrade.hpp"
#include "resilience/journal.hpp"
#include "resilience/watchdog.hpp"

namespace nonmask {
namespace {

std::uint64_t median_of(std::vector<std::uint64_t> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

// ------------------------------------------------------------ adversary

void expect_beats_baseline(const Design& design, std::size_t budget_k) {
  AdversaryOptions opts;
  opts.budget_k = budget_k;
  opts.seed = 7;
  const AdversaryResult result = find_worst_placement(design, opts);
  ASSERT_TRUE(result.exhaustive);
  EXPECT_FALSE(result.divergence_found);  // the protocols are stabilizing
  ASSERT_FALSE(result.placement.targets.empty());
  EXPECT_GT(result.evaluations, 0u);

  const auto baseline = random_placement_baseline(design, opts, 64);
  ASSERT_EQ(baseline.size(), 64u);
  // The adversary's placement admits a schedule strictly worse than the
  // median random placement's observed convergence time.
  EXPECT_GT(result.worst_case_steps, median_of(baseline));

  // The worst trace is a real ¬S → S path: starts outside S, ends inside.
  const auto S = design.S();
  ASSERT_GE(result.worst_trace.size(), 2u);
  EXPECT_FALSE(S(result.worst_trace.front()));
  EXPECT_TRUE(S(result.worst_trace.back()));
  EXPECT_EQ(result.worst_trace.size(),
            static_cast<std::size_t>(result.worst_case_steps) + 1);
}

TEST(AdversaryTest, BeatsRandomBaselineOnDijkstraRing) {
  expect_beats_baseline(make_dijkstra_ring(5, 6).design, 2);
}

TEST(AdversaryTest, BeatsRandomBaselineOnDiffusingTree) {
  expect_beats_baseline(make_diffusing(RootedTree::balanced(7, 2), true).design,
                        3);
}

TEST(AdversaryTest, DeterministicPerSeed) {
  const Design design = make_dijkstra_ring(5, 6).design;
  AdversaryOptions opts;
  opts.budget_k = 2;
  opts.seed = 42;
  const AdversaryResult a = find_worst_placement(design, opts);
  const AdversaryResult b = find_worst_placement(design, opts);
  EXPECT_EQ(a.placement.targets, b.placement.targets);
  EXPECT_EQ(a.placement.values, b.placement.values);
  EXPECT_EQ(a.worst_case_steps, b.worst_case_steps);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.observed.steps, b.observed.steps);
  EXPECT_EQ(worst_trace_json(design, a), worst_trace_json(design, b));

  const auto base_a = random_placement_baseline(design, opts, 32);
  const auto base_b = random_placement_baseline(design, opts, 32);
  EXPECT_EQ(base_a, base_b);
}

TEST(AdversaryTest, ForcedHillClimbIsDeterministicAndEffective) {
  const Design design = make_dijkstra_ring(5, 6).design;
  AdversaryOptions opts;
  opts.budget_k = 2;
  opts.seed = 11;
  opts.force_hill_climb = true;
  opts.restarts = 4;
  opts.iterations = 24;
  const AdversaryResult a = find_worst_placement(design, opts);
  const AdversaryResult b = find_worst_placement(design, opts);
  EXPECT_FALSE(a.exhaustive);
  EXPECT_EQ(a.placement.targets, b.placement.targets);
  EXPECT_EQ(a.placement.values, b.placement.values);
  EXPECT_EQ(a.worst_case_steps, b.worst_case_steps);
  EXPECT_EQ(a.evaluations, b.evaluations);
  // restarts * (1 + iterations) scored placements.
  EXPECT_EQ(a.evaluations, 4u * 25u);
  EXPECT_GT(a.worst_case_steps, median_of(
      random_placement_baseline(design, opts, 64)));
}

TEST(AdversaryTest, LegitimateStateSatisfiesS) {
  for (const Design& design :
       {make_dijkstra_ring(5, 6).design,
        make_diffusing(RootedTree::balanced(7, 2), true).design}) {
    const State s = legitimate_state(design, AdversaryOptions{});
    EXPECT_TRUE(design.S()(s));
  }
}

TEST(AdversaryTest, WorstTraceJsonIsSelfDescribing) {
  const Design design = make_dijkstra_ring(5, 6).design;
  AdversaryOptions opts;
  opts.budget_k = 1;
  const AdversaryResult result = find_worst_placement(design, opts);
  const std::string json = worst_trace_json(design, result);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* key :
       {"\"design\":", "\"mode\":\"exhaustive-greedy\"", "\"worst_case_steps\":",
        "\"placement\":", "\"targets\":", "\"variables\":", "\"worst_trace\":",
        "\"observed\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // The placement round-trips into a one-strike schedule.
  const FaultSchedule sched = result.placement.schedule();
  ASSERT_EQ(sched.size(), 1u);
  EXPECT_EQ(sched.strikes().front().step, result.placement.at_step);
}

// ----------------------------------------------------------- degradation

TEST(DegradeTest, ExhaustiveWhenSpaceFitsBudget) {
  const Design design = make_dijkstra_ring(4, 5).design;
  const ResilientVerification v = verify_resilient(design);
  EXPECT_TRUE(v.exhaustive);
  EXPECT_FALSE(v.degraded);
  EXPECT_TRUE(v.ok());
  EXPECT_GT(v.requested_states, 0u);
  const std::string json = to_json(v);
  EXPECT_NE(json.find("\"exhaustive\":true"), std::string::npos);
  EXPECT_NE(json.find("\"convergence\":"), std::string::npos);
}

TEST(DegradeTest, SamplingFallbackRecordsTruncation) {
  const Design design = make_diffusing(RootedTree::balanced(7, 2), true).design;
  DegradeOptions opts;
  opts.state_budget = 16;  // force StateSpaceTooLarge
  opts.sample_trials = 32;
  opts.seed = 3;
  const ResilientVerification v = verify_resilient(design, opts);
  EXPECT_FALSE(v.exhaustive);
  EXPECT_TRUE(v.degraded);
  EXPECT_EQ(v.state_budget, 16u);
  EXPECT_GT(v.requested_states, 16u);
  EXPECT_EQ(v.sampled_trials, 32u);
  // The protocol is stabilizing, so every sampled trial converges.
  EXPECT_DOUBLE_EQ(v.sampled.converged_fraction, 1.0);
  EXPECT_TRUE(v.ok());

  const std::string json = to_json(v);
  EXPECT_NE(json.find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(json.find("\"sampled_trials\":32"), std::string::npos);

  obs::RunReport report("degrade-test");
  record_verification(report, v);
  const std::string rendered = report.to_json();
  EXPECT_NE(rendered.find("\"degradation\":"), std::string::npos);
  EXPECT_NE(rendered.find("\"reason\":\"StateSpaceTooLarge\""),
            std::string::npos);
  EXPECT_NE(rendered.find("\"fallback\":\"sampled-convergence\""),
            std::string::npos);
}

// --------------------------------------------------------------- journal

TEST(JournalTest, JsonlRoundTrip) {
  TrialRecord record;
  record.trial = 17;
  record.seeds = {0x1234'5678'9abc'def0ULL, 42};
  record.outcome.converged = true;
  record.outcome.steps = 321;
  record.outcome.rounds = 12;
  record.outcome.moves = 300;
  record.attempts = 3;
  record.error = "boom \"quoted\"\nline";
  const std::string line = to_jsonl("my-design", record);
  std::string design_name;
  const auto parsed = parse_trial_jsonl(line, &design_name);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(design_name, "my-design");
  EXPECT_EQ(parsed->trial, record.trial);
  EXPECT_EQ(parsed->seeds.daemon, record.seeds.daemon);
  EXPECT_EQ(parsed->seeds.start, record.seeds.start);
  EXPECT_EQ(parsed->outcome.converged, record.outcome.converged);
  EXPECT_EQ(parsed->outcome.steps, record.outcome.steps);
  EXPECT_EQ(parsed->outcome.rounds, record.outcome.rounds);
  EXPECT_EQ(parsed->outcome.moves, record.outcome.moves);
  EXPECT_EQ(parsed->attempts, record.attempts);
  EXPECT_EQ(parsed->error, record.error);
  // Re-rendering the parsed record is byte-identical.
  EXPECT_EQ(to_jsonl(design_name, *parsed), line);
}

TEST(JournalTest, TornAndMalformedLinesAreRejected) {
  EXPECT_FALSE(parse_trial_jsonl("").has_value());
  EXPECT_FALSE(parse_trial_jsonl("{\"design\":\"dif").has_value());
  EXPECT_FALSE(parse_trial_jsonl("not json at all").has_value());
  EXPECT_FALSE(parse_trial_jsonl("{\"design\":\"d\"}").has_value());
}

TEST(JournalTest, PrefixStopsAtFirstMismatch) {
  const std::string path = testing::TempDir() + "journal_prefix_test.jsonl";
  const auto seeds = derive_trial_seeds(5, 4);
  TrialRecord r0, r1;
  r0.trial = 0;
  r0.seeds = seeds[0];
  r0.outcome.converged = true;
  r1.trial = 1;
  r1.seeds = {999, 999};  // wrong seeds: prefix must stop before this line
  {
    std::ofstream out(path, std::ios::trunc);
    out << to_jsonl("d", r0) << '\n' << to_jsonl("d", r1) << '\n';
  }
  const JournalPrefix prefix = load_journal_prefix(path, "d", seeds);
  EXPECT_EQ(prefix.records.size(), 1u);
  ASSERT_EQ(prefix.lines.size(), 1u);
  EXPECT_EQ(prefix.lines[0], to_jsonl("d", r0));
  // Wrong design name: empty prefix. Missing file: empty prefix.
  EXPECT_TRUE(load_journal_prefix(path, "other", seeds).records.empty());
  EXPECT_TRUE(
      load_journal_prefix(path + ".missing", "d", seeds).records.empty());
  std::remove(path.c_str());
}

// -------------------------------------------------------------- resume

TEST(CampaignResumeTest, KilledCampaignResumesByteIdentically) {
  const Design design =
      make_diffusing(RootedTree::balanced(7, 2), true).design;
  ConvergenceExperiment config;
  config.trials = 16;
  config.seed = 9;

  const std::string checkpoint =
      testing::TempDir() + "campaign_resume_test.jsonl";

  // Uninterrupted run: the reference byte stream.
  std::ostringstream reference;
  {
    CampaignOptions opts;
    opts.threads = 1;
    opts.jsonl = &reference;
    opts.checkpoint = checkpoint;
    run_campaign(design, config, opts);
  }
  std::string journal_bytes;
  {
    std::ifstream in(checkpoint, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    journal_bytes = buf.str();
  }
  EXPECT_EQ(journal_bytes, reference.str());

  // Simulate a kill after 6 trials: a valid 6-line prefix plus a torn,
  // half-written 7th line.
  std::vector<std::string> lines;
  {
    std::istringstream in(reference.str());
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), config.trials);

  for (unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(threads);
    {
      std::ofstream out(checkpoint, std::ios::trunc | std::ios::binary);
      for (std::size_t i = 0; i < 6; ++i) out << lines[i] << '\n';
      out << "{\"design\":\"dif";  // torn tail, no newline
    }
    std::ostringstream resumed;
    CampaignOptions opts;
    opts.threads = threads;
    opts.jsonl = &resumed;
    opts.checkpoint = checkpoint;
    opts.resume = true;
    const CampaignResults results = run_campaign(design, config, opts);
    EXPECT_EQ(results.resumed_trials, 6u);
    // Merged stream (replayed prefix + fresh remainder) is byte-identical
    // to the uninterrupted run, and so is the rewritten journal.
    EXPECT_EQ(resumed.str(), reference.str());
    std::ifstream in(checkpoint, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), reference.str());
  }
  std::remove(checkpoint.c_str());
}

TEST(CampaignResumeTest, ResumeWithCompleteJournalRerunsNothing) {
  const Design design = make_dijkstra_ring(4, 5).design;
  ConvergenceExperiment config;
  config.trials = 8;
  config.seed = 2;
  const std::string checkpoint =
      testing::TempDir() + "campaign_complete_test.jsonl";
  std::ostringstream first;
  CampaignOptions opts;
  opts.threads = 2;
  opts.jsonl = &first;
  opts.checkpoint = checkpoint;
  run_campaign(design, config, opts);

  std::ostringstream second;
  opts.jsonl = &second;
  opts.resume = true;
  const CampaignResults results = run_campaign(design, config, opts);
  EXPECT_EQ(results.resumed_trials, config.trials);
  EXPECT_EQ(second.str(), first.str());
  std::remove(checkpoint.c_str());
}

// ------------------------------------------------------ watchdog / retry

/// A design that never converges: S is identically false and one closure
/// action is always enabled, so only the watchdog can end a trial early.
Design make_spinner() {
  ProgramBuilder b("spinner");
  const VarId spin = b.boolean("spin", 0);
  b.closure(
      "toggle", true_predicate(),
      [spin](State& s) { s.set(spin, 1 - s.get(spin)); }, {spin}, {spin}, 0);
  Design design;
  design.name = "spinner";
  design.program = b.build();
  design.S_override = false_predicate();
  design.stabilizing = false;
  return design;
}

TEST(WatchdogTest, DeadlineRecordsTimeoutInsteadOfHanging) {
  const Design design = make_spinner();
  ConvergenceExperiment config;
  config.trials = 1;
  config.max_steps = 1'000'000'000;  // effectively unbounded
  TrialPolicy policy;
  policy.deadline = std::chrono::milliseconds(50);
  const ResilientOutcome r =
      run_trial_resilient(design, config, {1, 2}, policy);
  EXPECT_TRUE(r.outcome.timed_out);
  EXPECT_FALSE(r.outcome.converged);
  EXPECT_FALSE(r.outcome.failed);
  EXPECT_EQ(r.attempts, 1u);  // deadline hits are not retried
  EXPECT_NE(r.error.find("watchdog deadline"), std::string::npos);
}

TEST(WatchdogTest, CampaignTimeoutDoesNotStallOtherWorkers) {
  const Design design = make_spinner();
  ConvergenceExperiment config;
  config.trials = 6;
  config.seed = 4;
  config.max_steps = 1'000'000'000;
  CampaignOptions opts;
  opts.threads = 2;
  opts.policy.deadline = std::chrono::milliseconds(30);
  std::ostringstream out;
  opts.jsonl = &out;
  const CampaignResults results = run_campaign(design, config, opts);
  EXPECT_EQ(results.timed_out, config.trials);
  EXPECT_DOUBLE_EQ(results.aggregate.converged_fraction, 0.0);
  // Every trial got its own record, in order.
  std::istringstream lines(out.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find("\"timed_out\":true"), std::string::npos);
    ++n;
  }
  EXPECT_EQ(n, config.trials);
}

TEST(WatchdogTest, PolicylessTrialMatchesRunTrialExactly) {
  const Design design = make_dijkstra_ring(4, 5).design;
  ConvergenceExperiment config;
  config.seed = 6;
  const auto seeds = derive_trial_seeds(config.seed, 3);
  for (const TrialSeeds& s : seeds) {
    const TrialOutcome plain = run_trial(design, config, s);
    const ResilientOutcome resilient =
        run_trial_resilient(design, config, s, {});
    EXPECT_EQ(resilient.outcome.converged, plain.converged);
    EXPECT_EQ(resilient.outcome.steps, plain.steps);
    EXPECT_EQ(resilient.outcome.rounds, plain.rounds);
    EXPECT_EQ(resilient.outcome.moves, plain.moves);
    EXPECT_EQ(resilient.attempts, 1u);
    EXPECT_TRUE(resilient.error.empty());
  }
}

TEST(RetryTest, FlakyTrialSucceedsAfterRetries) {
  const Design design = make_dijkstra_ring(4, 5).design;
  auto failures = std::make_shared<std::atomic<int>>(2);
  ConvergenceExperiment config;
  config.make_start = [failures](const Program& p, Rng& rng) {
    if (failures->fetch_sub(1) > 0) {
      throw std::runtime_error("transient start failure");
    }
    State s(p.num_variables());
    for (std::uint32_t i = 0; i < p.num_variables(); ++i) {
      const auto& spec = p.variable(VarId(i));
      s.set(VarId(i), static_cast<Value>(rng.range(spec.lo, spec.hi)));
    }
    return s;
  };
  TrialPolicy policy;
  policy.max_retries = 3;
  const ResilientOutcome r =
      run_trial_resilient(design, config, {3, 4}, policy);
  EXPECT_EQ(r.attempts, 3u);  // two failures + one success
  EXPECT_TRUE(r.outcome.converged);
  EXPECT_FALSE(r.outcome.failed);
}

TEST(RetryTest, ExhaustedRetriesRecordFailure) {
  const Design design = make_dijkstra_ring(4, 5).design;
  ConvergenceExperiment config;
  config.make_start = [](const Program&, Rng&) -> State {
    throw std::runtime_error("permanent start failure");
  };
  TrialPolicy policy;
  policy.max_retries = 2;
  const ResilientOutcome r =
      run_trial_resilient(design, config, {5, 6}, policy);
  EXPECT_EQ(r.attempts, 3u);  // initial + 2 retries
  EXPECT_TRUE(r.outcome.failed);
  EXPECT_FALSE(r.outcome.converged);
  EXPECT_NE(r.error.find("permanent start failure"), std::string::npos);
}

TEST(RetryTest, CampaignRecordsFailedTrialsWithoutThrowing) {
  const Design design = make_dijkstra_ring(4, 5).design;
  ConvergenceExperiment config;
  config.trials = 4;
  config.make_start = [](const Program&, Rng&) -> State {
    throw std::runtime_error("always fails");
  };
  CampaignOptions opts;
  opts.threads = 2;
  std::ostringstream out;
  opts.jsonl = &out;
  const CampaignResults results = run_campaign(design, config, opts);
  EXPECT_EQ(results.failed, config.trials);
  EXPECT_NE(out.str().find("\"failed\":true"), std::string::npos);
  EXPECT_NE(out.str().find("always fails"), std::string::npos);
}

}  // namespace
}  // namespace nonmask
