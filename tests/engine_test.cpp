// Unit tests for the simulation engine: stepping, stop predicates,
// deadlock/exhaustion detection, rounds/moves accounting, traces,
// violation timelines, and simultaneous-firing semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "core/builder.hpp"
#include "engine/metrics.hpp"
#include "engine/simulator.hpp"
#include "sched/daemons.hpp"

namespace nonmask {
namespace {

Program countdown(Value start_max = 9) {
  ProgramBuilder b("countdown");
  const VarId x = b.var("x", 0, start_max);
  b.closure(
      "dec", [x](const State& s) { return s.get(x) > 0; },
      [x](State& s) { s.set(x, s.get(x) - 1); }, {x}, {x});
  return b.build();
}

TEST(SimulatorTest, RunsToStopPredicate) {
  Program p = countdown();
  const VarId x = p.find_variable("x");
  FirstEnabledDaemon d;
  Simulator sim(p, d);
  State start(1);
  start.set(x, 6);
  RunOptions opts;
  opts.stop_when = [x](const State& s) { return s.get(x) == 0; };
  const auto r = sim.run(start, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_FALSE(r.exhausted);
  EXPECT_EQ(r.steps, 6u);
  EXPECT_EQ(r.moves, 6u);
  EXPECT_EQ(r.final_state.get(x), 0);
}

TEST(SimulatorTest, DeadlockDetected) {
  Program p = countdown();
  const VarId x = p.find_variable("x");
  FirstEnabledDaemon d;
  Simulator sim(p, d);
  State start(1);
  start.set(x, 3);
  RunOptions opts;
  opts.stop_when = [](const State&) { return false; };
  const auto r = sim.run(start, opts);
  EXPECT_TRUE(r.deadlocked);
  EXPECT_FALSE(r.converged);
}

TEST(SimulatorTest, ExhaustionDetected) {
  // Oscillator never satisfies the stop predicate.
  ProgramBuilder b("osc");
  const VarId x = b.boolean("x");
  b.closure(
      "flip", true_predicate(), [x](State& s) { s.set(x, 1 - s.get(x)); },
      {x}, {x});
  Program p = b.build();
  FirstEnabledDaemon d;
  Simulator sim(p, d);
  RunOptions opts;
  opts.max_steps = 100;
  opts.stop_when = [](const State&) { return false; };
  const auto r = sim.run(p.initial_state(), opts);
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.steps, 100u);
}

TEST(SimulatorTest, StopAtStartCountsZeroSteps) {
  Program p = countdown();
  FirstEnabledDaemon d;
  Simulator sim(p, d);
  RunOptions opts;
  opts.stop_when = true_predicate();
  const auto r = sim.run(p.initial_state(), opts);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.steps, 0u);
}

TEST(SimulatorTest, TraceRecordsFiredActions) {
  Program p = countdown();
  const VarId x = p.find_variable("x");
  FirstEnabledDaemon d;
  Simulator sim(p, d);
  State start(1);
  start.set(x, 3);
  RunOptions opts;
  opts.stop_when = [x](const State& s) { return s.get(x) == 0; };
  opts.record_trace = true;
  opts.record_snapshots = true;
  const auto r = sim.run(start, opts);
  EXPECT_EQ(r.trace.num_steps(), 3u);
  EXPECT_EQ(r.trace.snapshots().size(), 3u);
  const std::string rendered = r.trace.format(p);
  EXPECT_NE(rendered.find("dec"), std::string::npos);
}

TEST(SimulatorTest, ViolationTimelineShrinks) {
  Program p = countdown();
  const VarId x = p.find_variable("x");
  Invariant inv;
  inv.add(
      Constraint{"x<=2", [x](const State& s) { return s.get(x) <= 2; }, {x}});
  FirstEnabledDaemon d;
  Simulator sim(p, d);
  State start(1);
  start.set(x, 5);
  RunOptions opts;
  opts.stop_when = [x](const State& s) { return s.get(x) == 0; };
  opts.track_violations = &inv;
  const auto r = sim.run(start, opts);
  const auto& timeline = r.trace.violation_timeline();
  ASSERT_GE(timeline.size(), 4u);
  EXPECT_EQ(timeline.front(), 1u);  // x=5 violates
  EXPECT_EQ(timeline.back(), 0u);
}

TEST(SimulatorTest, PerturbHookMutatesState) {
  Program p = countdown();
  const VarId x = p.find_variable("x");
  FirstEnabledDaemon d;
  Simulator sim(p, d);
  State start(1);
  start.set(x, 1);
  RunOptions opts;
  opts.stop_when = [](const State&) { return false; };
  opts.max_steps = 50;
  // Re-arm the countdown at step 1 — the run must last 5 extra steps.
  opts.perturb = [x](std::size_t step, State& s) {
    if (step == 1) s.set(x, 5);
  };
  const auto r = sim.run(start, opts);
  EXPECT_EQ(r.steps, 6u);
  EXPECT_TRUE(r.deadlocked);
}

TEST(SimulatorTest, ContractCheckThrowsOnViolation) {
  ProgramBuilder b("bad");
  const VarId x = b.boolean("x");
  const VarId y = b.boolean("y");
  b.closure(
      "sneaky", true_predicate(),
      [x, y](State& s) {
        s.set(x, 1);
        s.set(y, 1);
      },
      {x, y}, {x});
  Program p = b.build();
  FirstEnabledDaemon d;
  Simulator sim(p, d);
  RunOptions opts;
  opts.check_contracts = true;
  opts.max_steps = 5;
  EXPECT_THROW(sim.run(p.initial_state(), opts), std::logic_error);
}

TEST(SimulatorTest, SynchronousFiringReadsOldState) {
  // Two processes swap values simultaneously: classic read-old semantics.
  ProgramBuilder b("swap");
  const VarId u = b.var("u", 0, 9, 0);
  const VarId v = b.var("v", 0, 9, 1);
  b.closure(
      "copy-v-to-u", true_predicate(),
      [u, v](State& s) { s.set(u, s.get(v)); }, {u, v}, {u}, 0);
  b.closure(
      "copy-u-to-v", true_predicate(),
      [u, v](State& s) { s.set(v, s.get(u)); }, {u, v}, {v}, 1);
  Program p = b.build();
  SynchronousDaemon d;
  Simulator sim(p, d);
  State start(2);
  start.set(u, 3);
  start.set(v, 7);
  RunOptions opts;
  opts.max_steps = 1;
  const auto r = sim.run(start, opts);
  EXPECT_EQ(r.final_state.get(u), 7);
  EXPECT_EQ(r.final_state.get(v), 3);
  EXPECT_EQ(r.steps, 1u);
  EXPECT_EQ(r.moves, 2u);
}

TEST(SimulatorTest, RoundsTrackEnabledSets) {
  // Three independent countdowns under round-robin: one round per sweep.
  ProgramBuilder b("multi");
  std::vector<VarId> xs;
  for (int j = 0; j < 3; ++j) {
    xs.push_back(b.var("x" + std::to_string(j), 0, 4, j));
  }
  for (int j = 0; j < 3; ++j) {
    const VarId x = xs[static_cast<std::size_t>(j)];
    b.closure(
        "dec@" + std::to_string(j),
        [x](const State& s) { return s.get(x) > 0; },
        [x](State& s) { s.set(x, s.get(x) - 1); }, {x}, {x}, j);
  }
  Program p = b.build();
  RoundRobinDaemon d;
  Simulator sim(p, d);
  State start(3);
  for (const VarId x : xs) start.set(x, 4);
  RunOptions opts;
  opts.stop_when = [xs](const State& s) {
    for (const VarId x : xs) {
      if (s.get(x) != 0) return false;
    }
    return true;
  };
  const auto r = sim.run(start, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.steps, 12u);
  EXPECT_EQ(r.rounds, 4u);
}

TEST(ConvergeHelperTest, UsesDesignS) {
  ProgramBuilder b("fix");
  const VarId x = b.var("x", 0, 5);
  b.convergence(
      "fix", [x](const State& s) { return s.get(x) != 0; },
      [x](State& s) { s.set(x, 0); }, {x}, {x}, 0);
  Design d;
  d.program = b.build();
  d.invariant.add(
      Constraint{"x==0", [x](const State& s) { return s.get(x) == 0; }, {x}});
  RandomDaemon daemon(2);
  State start(1);
  start.set(x, 4);
  const auto r = converge(d, start, daemon);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.steps, 1u);
}

TEST(MetricsTest, SummaryStatistics) {
  const auto stats = summarize({4.0, 1.0, 3.0, 2.0, 5.0});
  EXPECT_EQ(stats.count, 5u);
  EXPECT_DOUBLE_EQ(stats.mean, 3.0);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 5.0);
  EXPECT_DOUBLE_EQ(stats.p50, 3.0);
  EXPECT_DOUBLE_EQ(stats.sum, 15.0);
  // Population stddev of {1..5}: sqrt(((-2)^2+1+0+1+4)/5) = sqrt(2).
  EXPECT_DOUBLE_EQ(stats.stddev, std::sqrt(2.0));
  const auto empty = summarize({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.sum, 0.0);
  EXPECT_DOUBLE_EQ(empty.stddev, 0.0);
}

// The small-count percentile contract documented in engine/metrics.hpp:
// type-7 interpolation at rank q*(count-1), pinned for count < 3.
TEST(MetricsTest, PercentileEdgeCases) {
  const auto empty = summarize({});
  EXPECT_DOUBLE_EQ(empty.p50, 0.0);
  EXPECT_DOUBLE_EQ(empty.p95, 0.0);
  EXPECT_DOUBLE_EQ(empty.p99, 0.0);
  EXPECT_DOUBLE_EQ(empty.min, 0.0);
  EXPECT_DOUBLE_EQ(empty.max, 0.0);

  // One sample: rank 0 is the only order statistic, so every percentile
  // (and min/max/mean) is that sample.
  const auto single = summarize({7.0});
  EXPECT_EQ(single.count, 1u);
  EXPECT_DOUBLE_EQ(single.min, 7.0);
  EXPECT_DOUBLE_EQ(single.max, 7.0);
  EXPECT_DOUBLE_EQ(single.mean, 7.0);
  EXPECT_DOUBLE_EQ(single.p50, 7.0);
  EXPECT_DOUBLE_EQ(single.p95, 7.0);
  EXPECT_DOUBLE_EQ(single.p99, 7.0);
  EXPECT_DOUBLE_EQ(single.stddev, 0.0);

  // Two samples: rank q*(2-1) = q interpolates linearly between them.
  const auto pair = summarize({3.0, 1.0});
  EXPECT_EQ(pair.count, 2u);
  EXPECT_DOUBLE_EQ(pair.p50, 2.0);                       // midpoint
  EXPECT_DOUBLE_EQ(pair.p95, 1.0 + 0.95 * (3.0 - 1.0));  // 2.9
  EXPECT_DOUBLE_EQ(pair.p99, 1.0 + 0.99 * (3.0 - 1.0));  // 2.98
  EXPECT_LE(pair.p99, pair.max);

  // Percentiles never leave [min, max].
  const auto trio = summarize({10.0, 20.0, 30.0});
  EXPECT_GE(trio.p50, trio.min);
  EXPECT_LE(trio.p99, trio.max);
  EXPECT_DOUBLE_EQ(trio.p50, 20.0);
}

}  // namespace
}  // namespace nonmask
