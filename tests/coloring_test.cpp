// Extension protocol: stabilizing graph coloring (the clean Theorem 3
// showcase — per-id layers).
#include <gtest/gtest.h>

#include "cgraph/theorems.hpp"
#include "checker/closure_check.hpp"
#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "engine/simulator.hpp"
#include "protocols/coloring.hpp"
#include "sched/daemons.hpp"

namespace nonmask {
namespace {

TEST(ColoringTest, StabilizesExhaustivelyOnSmallGraphs) {
  for (const auto& g :
       {UndirectedGraph::path(4), UndirectedGraph::cycle(4),
        UndirectedGraph::complete(3), UndirectedGraph::grid(2, 2)}) {
    const auto cd = make_coloring(g);
    StateSpace space(cd.design.program);
    EXPECT_TRUE(check_closed(space, cd.design.S()).closed);
    const auto report = check_convergence(space, cd.design.S(), cd.design.T());
    EXPECT_EQ(report.verdict, ConvergenceVerdict::kConverges);
  }
}

TEST(ColoringTest, InvariantImpliesProperColoring) {
  const auto g = UndirectedGraph::cycle(5);
  const auto cd = make_coloring(g);
  StateSpace space(cd.design.program);
  const auto S = cd.design.S();
  State s(cd.design.program.num_variables());
  std::uint64_t s_count = 0;
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, s);
    if (!S(s)) continue;
    ++s_count;
    EXPECT_TRUE(cd.proper(g, s));
  }
  EXPECT_GT(s_count, 0u);
}

TEST(ColoringTest, ConvergesOnLargeRandomGraphs) {
  Rng rng(47);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = UndirectedGraph::random_connected(80, 120, rng);
    const auto cd = make_coloring(g);
    RandomDaemon d(trial);
    Rng start_rng(trial + 100);
    RunOptions opts;
    opts.max_steps = 500'000;
    const auto r = converge(cd.design,
                            cd.design.program.random_state(start_rng), d,
                            opts);
    ASSERT_TRUE(r.converged);
    EXPECT_TRUE(cd.proper(g, r.final_state));
  }
}

TEST(ColoringTest, MovesBoundedByIdInduction) {
  // Under any central daemon, node j moves at most once after all lower
  // ids quiesce; total moves are bounded by n per full sweep — empirically,
  // far fewer than the step cap.
  const auto g = UndirectedGraph::complete(6);
  const auto cd = make_coloring(g);
  AdversarialDaemon d(cd.design.invariant, 61);
  Rng start_rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    RunOptions opts;
    opts.max_steps = 1000;
    const auto r = converge(
        cd.design, cd.design.program.random_state(start_rng), d, opts);
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.steps, 36u);  // n^2 is a generous bound for n = 6
  }
}

TEST(ColoringTest, Theorem3AppliesWithPerIdLayers) {
  const auto g = UndirectedGraph::grid(2, 2);
  const auto cd = make_coloring(g);
  StateSpace space(cd.design.program);
  ValidationOptions opts;
  opts.space = &space;
  const auto report = validate_theorem3(cd.design, cd.layers, opts);
  EXPECT_TRUE(report.applies) << format_report(report);
}

TEST(ColoringTest, PaletteNeverExceedsMaxDegreePlusOne) {
  Rng rng(53);
  const auto g = UndirectedGraph::random_connected(30, 40, rng);
  const auto cd = make_coloring(g);
  RandomDaemon d(9);
  Rng start_rng(11);
  const auto r =
      converge(cd.design, cd.design.program.random_state(start_rng), d);
  ASSERT_TRUE(r.converged);
  for (const VarId c : cd.color) {
    EXPECT_LE(r.final_state.get(c), static_cast<Value>(g.max_degree()));
  }
}

}  // namespace
}  // namespace nonmask
