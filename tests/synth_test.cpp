// Counterexample-guided synthesis: re-derivation of the shipped protocols
// from closure actions + constraints alone, CEGIS pruning behavior,
// determinism across thread counts, certification fallbacks, and negative
// audits of tampered synthesized certificates.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "cgraph/certify.hpp"
#include "cgraph/refine.hpp"
#include "checker/convergence_check.hpp"
#include "checker/falsify.hpp"
#include "checker/state_space.hpp"
#include "protocols/coloring.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/running_example.hpp"
#include "protocols/token_ring.hpp"
#include "synth/report.hpp"
#include "synth/synthesize.hpp"

namespace nonmask {
namespace {

/// Three-variable chain a=b, b=c, c=0 over [0,3]: the candidate grammar
/// yields pools {b:=a, a:=b} x {c:=b, b:=c} x {c:=0}, and the first three
/// combinations livelock (two actions fight over one variable), so the
/// CEGIS loop must falsify, bank seeds, and seed-prune before the
/// right-to-left combination (a:=b, b:=c, c:=0) wins at index 3.
CandidateTriple make_chain_candidate() {
  CandidateTriple t;
  t.program = Program("chain");
  const VarId a = t.program.add_variable({"a", 0, 3});
  const VarId b = t.program.add_variable({"b", 0, 3});
  const VarId c = t.program.add_variable({"c", 0, 3});
  t.invariant.add({"a=b",
                   [a, b](const State& s) { return s.get(a) == s.get(b); },
                   {a, b}});
  t.invariant.add({"b=c",
                   [b, c](const State& s) { return s.get(b) == s.get(c); },
                   {b, c}});
  t.invariant.add({"c=0", [c](const State& s) { return s.get(c) == 0; }, {c}});
  return t;
}

/// Independent re-verification of a synthesized design: exact tolerance
/// plus, when a theorem certified it, a fresh certificate audit.
void expect_sound(const synth::SynthesisResult& result) {
  ASSERT_TRUE(result.success) << result.failure;
  const StateSpace space(result.design.program);
  const auto exact = verify_tolerance(space, result.design);
  EXPECT_TRUE(exact.tolerant()) << result.design.name;
  if (result.certification.theorem_certified()) {
    ValidationOptions opts;
    opts.space = &space;
    opts.seed = 0xfeedULL;  // different stream than the synthesizer used
    const auto problems =
        audit_certificate(result.design, result.certification.graph,
                          result.certification.report, opts);
    EXPECT_TRUE(problems.empty())
        << result.design.name << ": "
        << (problems.empty() ? "" : problems.front());
  }
}

TEST(SynthTest, RederivesDiffusingWithTheorem1) {
  const auto candidate =
      make_diffusing(RootedTree::balanced(3, 2), false).design.candidate();
  const auto result = synth::synthesize(candidate);
  expect_sound(result);
  EXPECT_EQ(result.certification.method, synth::CertMethod::kTheorem1);
  EXPECT_TRUE(result.certification.theorem_certified());
  // The out-tree certificate carries the rank recurrence over the tree.
  EXPECT_FALSE(result.certification.report.ranks.empty());
  // One synthesized action per non-root constraint.
  EXPECT_EQ(result.winner_actions.size(), candidate.invariant.size());
}

TEST(SynthTest, RederivesTokenRingFromConstraints) {
  const auto candidate =
      make_token_ring_bounded(3, 3, false).design.candidate();
  const auto result = synth::synthesize(candidate);
  expect_sound(result);
  // The layered certificate (Section 7.1's shape) should apply; whatever
  // the cascade settled on, the exact checker's verdict is the contract.
  EXPECT_EQ(result.exact.convergence.verdict, ConvergenceVerdict::kConverges);
  EXPECT_TRUE(result.exact.S_closed);
  EXPECT_TRUE(result.exact.T_closed);
}

TEST(SynthTest, SynthesizesColoringViaSuggestedLayers) {
  // Coloring is hand-coded in protocols/ but never derived; synthesis must
  // find the mex recoloring and certify it through the Theorem 3 fallback
  // (suggest_layers -> validate_theorem3 -> layered audit) end to end.
  const auto candidate =
      make_coloring(UndirectedGraph::cycle(4)).design.candidate();
  const auto result = synth::synthesize(candidate);
  expect_sound(result);
  EXPECT_EQ(result.certification.method, synth::CertMethod::kTheorem3);
  EXPECT_TRUE(result.certification.theorem_certified());
  EXPECT_GE(result.certification.report.layers.size(), 2u);
  // Every winner action is the minimum-excludant recoloring.
  for (const auto& d : result.winner_descriptions) {
    EXPECT_NE(d.find("mex"), std::string::npos) << d;
  }
}

TEST(SynthTest, CegisFalsifiesAndSeedPrunes) {
  synth::SynthesisOptions opts;
  opts.batch = 1;  // one combination per batch: seeds flow between batches
  const auto result = synth::synthesize(make_chain_candidate(), opts);
  expect_sound(result);
  EXPECT_EQ(result.winner_index, 3u);
  EXPECT_EQ(result.total_combinations, 4u);
  // Combination 0 must be killed by the falsifier; its banked cycle states
  // must then prune combinations 1 and 2 without running walks or the
  // exact checker on them.
  EXPECT_GE(result.stats.falsified, 1u);
  EXPECT_GE(result.stats.pruned_by_seed, 2u);
  EXPECT_GE(result.stats.seeds_collected, 1u);
  EXPECT_EQ(result.stats.exact_checks, 1u);
}

TEST(SynthTest, ReportsAreByteIdenticalAcrossThreadCounts) {
  const auto candidate =
      make_token_ring_bounded(3, 3, false).design.candidate();
  std::optional<std::string> reference;
  for (unsigned threads : {1u, 2u, 8u}) {
    synth::SynthesisOptions opts;
    opts.seed = 42;
    opts.threads = threads;
    const auto report =
        synth::render_synthesis_report(synth::synthesize(candidate, opts));
    if (!reference) {
      reference = report;
    } else {
      EXPECT_EQ(report, *reference) << "threads=" << threads;
    }
  }

  // Same contract when seeds accumulate across batch boundaries.
  std::optional<std::string> chain_reference;
  for (unsigned threads : {1u, 8u}) {
    synth::SynthesisOptions opts;
    opts.batch = 1;
    opts.threads = threads;
    const auto report = synth::render_synthesis_report(
        synth::synthesize(make_chain_candidate(), opts));
    if (!chain_reference) {
      chain_reference = report;
    } else {
      EXPECT_EQ(report, *chain_reference);
    }
  }
}

TEST(SynthTest, WritableRestrictionSteersToTheorem2) {
  // Restricting writes to {x} forces the Section 6 kDecreaseX-style
  // solution: both synthesized actions write x, the constraint graph is
  // self-looping, and Theorem 2's per-node linear order certifies it.
  const auto candidate =
      make_running_example(RunningExampleVariant::kWriteYZ).candidate();
  synth::SynthesisOptions opts;
  opts.grammar.writable = {candidate.program.find_variable("x")};
  const auto result = synth::synthesize(candidate, opts);
  expect_sound(result);
  EXPECT_EQ(result.certification.method, synth::CertMethod::kTheorem2);
  EXPECT_FALSE(result.certification.report.node_orders.empty());
}

TEST(SynthTest, TamperedSynthesizedRanksRejected) {
  const auto result = synth::synthesize(
      make_diffusing(RootedTree::balanced(3, 2), false).design.candidate());
  ASSERT_TRUE(result.success) << result.failure;
  ASSERT_EQ(result.certification.method, synth::CertMethod::kTheorem1);
  const StateSpace space(result.design.program);
  ValidationOptions opts;
  opts.space = &space;

  auto tampered = result.certification.report;
  ASSERT_FALSE(tampered.ranks.empty());
  tampered.ranks.back() += 1;
  const auto problems = audit_certificate(
      result.design, result.certification.graph, tampered, opts);
  EXPECT_FALSE(problems.empty());
}

TEST(SynthTest, TamperedSynthesizedOrderRejected) {
  const auto candidate =
      make_running_example(RunningExampleVariant::kWriteYZ).candidate();
  synth::SynthesisOptions sopts;
  sopts.grammar.writable = {candidate.program.find_variable("x")};
  const auto result = synth::synthesize(candidate, sopts);
  ASSERT_TRUE(result.success) << result.failure;
  ASSERT_EQ(result.certification.method, synth::CertMethod::kTheorem2);

  const StateSpace space(result.design.program);
  ValidationOptions opts;
  opts.space = &space;
  auto tampered = result.certification.report;
  bool reversed = false;
  for (auto& order : tampered.node_orders) {
    if (order.size() >= 2) {
      std::swap(order.front(), order.back());
      reversed = true;
    }
  }
  ASSERT_TRUE(reversed);  // the self-loop node carries both actions
  const auto problems = audit_certificate(
      result.design, result.certification.graph, tampered, opts);
  EXPECT_FALSE(problems.empty());
}

TEST(SynthTest, TamperedSynthesizedLayersRejected) {
  const auto result = synth::synthesize(
      make_coloring(UndirectedGraph::cycle(4)).design.candidate());
  ASSERT_TRUE(result.success) << result.failure;
  ASSERT_EQ(result.certification.method, synth::CertMethod::kTheorem3);
  const StateSpace space(result.design.program);
  ValidationOptions opts;
  opts.space = &space;

  // Dropping an action breaks the partition requirement.
  auto missing = result.certification.report;
  ASSERT_FALSE(missing.layers.empty());
  ASSERT_FALSE(missing.layers.front().empty());
  missing.layers.front().clear();
  auto problems = audit_certificate(result.design,
                                    result.certification.graph, missing, opts);
  EXPECT_FALSE(problems.empty());

  // Reversing the layer order breaks the cross-layer preserves
  // obligations (a higher layer's recoloring can violate a lower layer's
  // constraint in the reversed hierarchy).
  auto reversed = result.certification.report;
  std::reverse(reversed.layers.begin(), reversed.layers.end());
  problems = audit_certificate(result.design, result.certification.graph,
                               reversed, opts);
  EXPECT_FALSE(problems.empty());
}

TEST(SynthTest, SuggestLayersEdgeCases) {
  // No convergence actions: nothing to layer.
  const auto candidate =
      make_coloring(UndirectedGraph::cycle(4)).design.candidate();
  const Design bare = candidate.augmented({});
  EXPECT_FALSE(suggest_layers(bare).has_value());

  // Single constraint over a single variable: the synthesized design has
  // one convergence action and suggest_layers emits exactly one layer.
  CandidateTriple single;
  single.program = Program("single");
  const VarId a = single.program.add_variable({"a", 0, 3});
  single.invariant.add(
      {"a=0", [a](const State& s) { return s.get(a) == 0; }, {a}});
  const auto result = synth::synthesize(single);
  ASSERT_TRUE(result.success) << result.failure;
  const StateSpace space(result.design.program);
  ValidationOptions opts;
  opts.space = &space;
  const auto layers = suggest_layers(result.design, opts);
  ASSERT_TRUE(layers.has_value());
  ASSERT_EQ(layers->size(), 1u);
  EXPECT_EQ(layers->front().size(), 1u);
  const auto report = validate_theorem3(result.design, *layers, opts);
  EXPECT_TRUE(report.applies) << report.failure;
}

TEST(SynthTest, FailureModesReported) {
  // A candidate that already contains convergence actions is rejected.
  const Design full = make_running_example(RunningExampleVariant::kWriteYZ);
  CandidateTriple bad;
  bad.program = full.program;  // convergence actions still inside
  bad.invariant = full.invariant;
  const auto r1 = synth::synthesize(bad);
  EXPECT_FALSE(r1.success);
  EXPECT_NE(r1.failure.find("convergence"), std::string::npos);

  // A writable restriction that leaves some constraint with no writable
  // support variable empties that pool.
  const auto candidate =
      make_running_example(RunningExampleVariant::kWriteYZ).candidate();
  synth::SynthesisOptions opts;
  opts.grammar.writable = {candidate.program.find_variable("y")};
  const auto r2 = synth::synthesize(candidate, opts);
  EXPECT_FALSE(r2.success);
  EXPECT_NE(r2.failure.find("survives local pruning"), std::string::npos);

  // No constraints at all.
  CandidateTriple empty;
  empty.program = Program("empty");
  empty.program.add_variable({"a", 0, 1});
  const auto r3 = synth::synthesize(empty);
  EXPECT_FALSE(r3.success);
}

TEST(SynthTest, ProbeCertifiesViolationsSoundly) {
  // kWriteXBoth livelocks (Section 6's negative example): the bounded
  // probe must certify a violation from a state inside the livelock
  // region, and must report nothing from an S state.
  const Design d = make_running_example(RunningExampleVariant::kWriteXBoth);
  const StateSpace space(d.program);
  const auto exact = check_convergence(space, d.S(), d.T());
  ASSERT_EQ(exact.verdict, ConvergenceVerdict::kViolated);
  ASSERT_TRUE(exact.cycle.has_value());

  const auto probed = probe_violation_from(d, exact.cycle->front());
  EXPECT_TRUE(probed.violated);
  EXPECT_TRUE(probed.cycle.has_value() || probed.deadlock.has_value());

  // From inside S the probe reports nothing (start must satisfy T ∧ ¬S).
  const PredicateFn S = d.S();
  State in_s(d.program.num_variables());
  bool found = false;
  for (std::uint64_t code = 0; code < space.size() && !found; ++code) {
    space.decode_into(code, in_s);
    if (S(in_s)) found = true;
  }
  ASSERT_TRUE(found);
  EXPECT_FALSE(probe_violation_from(d, in_s).violated);
}

}  // namespace
}  // namespace nonmask
