// Extension protocol: stabilizing BFS spanning tree. Exhaustive
// stabilization on small graphs, correct distances and parents at scale,
// and the methodology boundary: its constraint graph is cyclic, so
// Theorems 1-2 refuse to apply even though the protocol converges.
#include <gtest/gtest.h>

#include <queue>

#include "cgraph/theorems.hpp"
#include "checker/closure_check.hpp"
#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "engine/simulator.hpp"
#include "protocols/spanning_tree.hpp"
#include "sched/daemons.hpp"

namespace nonmask {
namespace {

std::vector<int> bfs_distances(const UndirectedGraph& g, int root) {
  std::vector<int> dist(static_cast<std::size_t>(g.size()), -1);
  std::queue<int> q;
  dist[static_cast<std::size_t>(root)] = 0;
  q.push(root);
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    for (int w : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(w)] == -1) {
        dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(v)] + 1;
        q.push(w);
      }
    }
  }
  return dist;
}

TEST(SpanningTreeTest, StabilizesExhaustivelyOnSmallGraphs) {
  for (const auto& g :
       {UndirectedGraph::path(4), UndirectedGraph::cycle(4),
        UndirectedGraph::complete(4), UndirectedGraph::grid(2, 2)}) {
    const auto st = make_spanning_tree(g, 0);
    StateSpace space(st.design.program);
    EXPECT_TRUE(check_closed(space, st.design.S()).closed);
    const auto report = check_convergence(space, st.design.S(), st.design.T());
    EXPECT_EQ(report.verdict, ConvergenceVerdict::kConverges)
        << "graph with " << g.size() << " nodes, " << g.num_edges()
        << " edges";
  }
}

TEST(SpanningTreeTest, FixpointIsTrueBfsDistances) {
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = UndirectedGraph::random_connected(12, 6, rng);
    const auto st = make_spanning_tree(g, 0);
    RandomDaemon d(55);
    Rng start_rng(trial);
    const auto r = converge(st.design,
                            st.design.program.random_state(start_rng), d);
    ASSERT_TRUE(r.converged);
    const auto expected = bfs_distances(g, 0);
    for (int j = 0; j < g.size(); ++j) {
      EXPECT_EQ(r.final_state.get(st.dist[static_cast<std::size_t>(j)]),
                expected[static_cast<std::size_t>(j)])
          << "node " << j;
    }
  }
}

TEST(SpanningTreeTest, ExtractedParentsFormTree) {
  Rng rng(29);
  const auto g = UndirectedGraph::random_connected(20, 10, rng);
  const auto st = make_spanning_tree(g, 0);
  RandomDaemon d(3);
  Rng start_rng(7);
  const auto r =
      converge(st.design, st.design.program.random_state(start_rng), d);
  ASSERT_TRUE(r.converged);
  const auto parents = st.extract_parents(g, r.final_state);
  // RootedTree's constructor validates tree-ness.
  const RootedTree tree(parents);
  EXPECT_EQ(tree.root(), 0);
  // Tree edges are graph edges.
  for (int j = 1; j < g.size(); ++j) {
    const auto& nbrs = g.neighbors(j);
    EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), tree.parent(j)),
              nbrs.end());
  }
}

TEST(SpanningTreeTest, ConvergesAtScale) {
  Rng rng(31);
  const auto g = UndirectedGraph::random_connected(300, 200, rng);
  const auto st = make_spanning_tree(g, 0);
  RandomDaemon d(13);
  Rng start_rng(17);
  RunOptions opts;
  opts.max_steps = 2'000'000;
  const auto r = converge(
      st.design, st.design.program.random_state(start_rng), d, opts);
  EXPECT_TRUE(r.converged);
}

TEST(SpanningTreeTest, CyclicConstraintGraphDefeatsTheorems1And2) {
  // On a cycle, neighbors read each other: the inferred constraint graph
  // has a proper cycle, so the structural theorems do not apply — yet the
  // exact checker (above) proves convergence. This is the Section 7
  // motivation for refined analyses.
  const auto g = UndirectedGraph::cycle(4);
  const auto st = make_spanning_tree(g, 0);
  StateSpace space(st.design.program);
  ValidationOptions opts;
  opts.space = &space;
  const auto report = validate_design(st.design, opts);
  EXPECT_FALSE(report.applies);
}

TEST(SpanningTreeTest, RootValidation) {
  const auto g = UndirectedGraph::path(3);
  EXPECT_THROW(make_spanning_tree(g, -1), std::invalid_argument);
  EXPECT_THROW(make_spanning_tree(g, 3), std::invalid_argument);
}

}  // namespace
}  // namespace nonmask
