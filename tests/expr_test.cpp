// Tests for the expression DSL: evaluation, derived read/write sets,
// builder integration, and an end-to-end rebuild of the paper's running
// example that must agree with the hand-written version state-for-state.
#include <gtest/gtest.h>

#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "core/builder.hpp"
#include "core/expr.hpp"
#include "protocols/running_example.hpp"

namespace nonmask {
namespace {

using namespace nonmask::dsl;

struct Fixture {
  ProgramBuilder b{"dsl"};
  VarId x = b.var("x", -8, 8);
  VarId y = b.var("y", -8, 8);
  VarId z = b.var("z", -8, 8);

  State state(Value xv, Value yv, Value zv) {
    State s(3);
    s.set(x, xv);
    s.set(y, yv);
    s.set(z, zv);
    return s;
  }
};

TEST(ExprTest, ArithmeticAndReads) {
  Fixture f;
  const Expr e = (v(f.x) + v(f.y)) * lit(2) - v(f.z);
  EXPECT_EQ(e.eval(f.state(1, 2, 3)), 3);
  EXPECT_EQ(e.reads().size(), 3u);
}

TEST(ExprTest, EuclideanModulo) {
  Fixture f;
  const Expr e = v(f.x) % lit(3);
  EXPECT_EQ(e.eval(f.state(7, 0, 0)), 1);
  EXPECT_EQ(e.eval(f.state(-1, 0, 0)), 2);  // Euclidean, not truncated
  EXPECT_EQ(e.eval(f.state(-6, 0, 0)), 0);
}

TEST(ExprTest, MinMax) {
  Fixture f;
  EXPECT_EQ(min(v(f.x), v(f.y)).eval(f.state(4, 2, 0)), 2);
  EXPECT_EQ(max(v(f.x), lit(5)).eval(f.state(4, 0, 0)), 5);
}

TEST(ExprTest, ComparisonsAndConnectives) {
  Fixture f;
  const Guard g = (v(f.x) == v(f.y)) || (v(f.x) > v(f.z) && !(v(f.y) < lit(0)));
  EXPECT_TRUE(g.eval(f.state(2, 2, 5)));
  EXPECT_TRUE(g.eval(f.state(6, 1, 5)));
  EXPECT_FALSE(g.eval(f.state(6, -1, 5)));
  EXPECT_FALSE(g.eval(f.state(0, 1, 5)));
  EXPECT_EQ(g.reads().size(), 3u);
}

TEST(ExprTest, AllOfAnyOfEmpty) {
  Fixture f;
  EXPECT_TRUE(all_of({}).eval(f.state(0, 0, 0)));
  EXPECT_FALSE(any_of({}).eval(f.state(0, 0, 0)));
  EXPECT_TRUE(all_of({v(f.x) == lit(0), v(f.y) == lit(0)})
                  .eval(f.state(0, 0, 9)));
  EXPECT_TRUE(any_of({v(f.x) == lit(1), v(f.z) == lit(9)})
                  .eval(f.state(0, 0, 9)));
}

TEST(ExprTest, AssignWritesTargetOnly) {
  Fixture f;
  const Stmt st = assign(f.y, v(f.x) + lit(1));
  State s = f.state(3, 0, 0);
  st.fn()(s);
  EXPECT_EQ(s.get(f.y), 4);
  EXPECT_EQ(st.writes(), (std::vector<VarId>{f.y}));
  EXPECT_EQ(st.reads(), (std::vector<VarId>{f.x}));
}

TEST(ExprTest, MultiAssignmentIsSimultaneous) {
  Fixture f;
  // Swap x and y: both right-hand sides must read the pre-state.
  const Stmt st = multi({assign(f.x, v(f.y)), assign(f.y, v(f.x))});
  State s = f.state(1, 2, 0);
  st.fn()(s);
  EXPECT_EQ(s.get(f.x), 2);
  EXPECT_EQ(s.get(f.y), 1);
  EXPECT_EQ(st.writes().size(), 2u);
}

TEST(ExprTest, AddActionDerivesContracts) {
  Fixture f;
  const Guard g = v(f.x) != v(f.y);
  const Stmt st = assign(f.y, v(f.x));
  const auto idx = add_action(f.b, "sync", ActionKind::kConvergence, g, st,
                              /*constraint_id=*/0, /*process=*/1);
  const Program p = f.b.build();
  const Action& a = p.action(idx);
  EXPECT_EQ(a.kind(), ActionKind::kConvergence);
  EXPECT_EQ(a.constraint_id(), 0);
  EXPECT_EQ(a.process(), 1);
  EXPECT_EQ(a.writes(), (std::vector<VarId>{f.y}));
  // reads = guard reads ∪ stmt reads = {x, y}
  EXPECT_EQ(a.reads().size(), 2u);
  // Contract: no undeclared writes at any state.
  State s(3);
  EXPECT_TRUE(a.contract_violations(s).empty());
}

TEST(ExprTest, IteIsStateDependent) {
  Fixture f;
  const Expr e = ite(v(f.x) == lit(0), lit(7), lit(0));
  EXPECT_EQ(e.eval(f.state(0, 0, 0)), 7);
  EXPECT_EQ(e.eval(f.state(1, 0, 0)), 0);
  EXPECT_EQ(e.reads(), (std::vector<VarId>{f.x}));
}

/// Rebuild the running example (kWriteYZ) with the DSL and check it agrees
/// with the hand-written protocol on every state: same enabledness, same
/// successors, same exact-checker verdict.
TEST(ExprTest, DslRunningExampleMatchesHandWritten) {
  const Design hand = make_running_example(RunningExampleVariant::kWriteYZ);

  ProgramBuilder b("dsl-running-example");
  const VarId x = b.var("x", -1, 7);
  const VarId y = b.var("y", 0, 7);
  const VarId z = b.var("z", 0, 7);

  Invariant inv;
  const auto c_neq =
      inv.add(Constraint{"x != y", (v(x) != v(y)).fn(), {x, y}});
  const auto c_leq =
      inv.add(Constraint{"x <= z", (v(x) <= v(z)).fn(), {x, z}});

  add_action(b, "fix-neq", ActionKind::kConvergence, v(x) == v(y),
             assign(y, ite(v(x) == lit(0), lit(7), lit(0))),
             static_cast<int>(c_neq));
  add_action(b, "fix-leq", ActionKind::kConvergence, v(x) > v(z),
             assign(z, v(x)), static_cast<int>(c_leq));

  Design dsl_design;
  dsl_design.name = "dsl-running-example";
  dsl_design.program = b.build();
  dsl_design.invariant = std::move(inv);
  dsl_design.fault_span = true_predicate();

  // State-for-state agreement with the hand-written design.
  ASSERT_EQ(dsl_design.program.num_variables(),
            hand.program.num_variables());
  StateSpace space(dsl_design.program);
  State s(3);
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, s);
    for (std::size_t a = 0; a < 2; ++a) {
      const auto& da = dsl_design.program.action(a);
      const auto& ha = hand.program.action(a);
      ASSERT_EQ(da.enabled(s), ha.enabled(s))
          << dsl_design.program.format_state(s);
      if (da.enabled(s)) {
        ASSERT_EQ(da.apply(s), ha.apply(s))
            << dsl_design.program.format_state(s);
      }
    }
  }
  // And the same exact-checker verdict.
  const auto report =
      check_convergence(space, dsl_design.S(), dsl_design.T());
  EXPECT_EQ(report.verdict, ConvergenceVerdict::kConverges);
  EXPECT_LE(report.max_steps_to_S, 2u);
}

}  // namespace
}  // namespace nonmask
