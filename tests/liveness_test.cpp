// Exact liveness verification of the specifications' progress clauses,
// using check_convergence as a leads-to oracle:
//   "from every state where FROM holds, every computation reaches TARGET"
// is exactly check_convergence(space, S = TARGET, T = FROM) — the checker
// never requires FROM to be closed, it simply explores the ¬TARGET states
// reachable from FROM.
//
// Verified here:
//   * token ring spec (ii): each privileged node eventually yields its
//     privilege to its successor (Dijkstra K-state, exact, all j);
//   * three-/four-state rings: a privileged machine eventually yields;
//   * diffusing computation: in S, a green root eventually starts the next
//     wave with a toggled session number, and every red node eventually
//     turns green again (waves never wedge).
#include <gtest/gtest.h>

#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/token_ring.hpp"
#include "protocols/token_ring_small.hpp"

namespace nonmask {
namespace {

/// leads-to: from every FROM state, every computation reaches TARGET.
bool leads_to(const StateSpace& space, const PredicateFn& from,
              const PredicateFn& target) {
  return check_convergence(space, target, from).verdict ==
         ConvergenceVerdict::kConverges;
}

TEST(LivenessTest, DijkstraRingPrivilegePassesToSuccessor) {
  const int n = 5;
  const auto tr = make_dijkstra_ring(n, n + 1);
  StateSpace space(tr.design.program);
  const auto S = tr.design.S();
  for (int j = 0; j < n; ++j) {
    auto from = [S, &tr, j](const State& s) {
      return S(s) && tr.first_privileged(s) == j;
    };
    auto target = [&tr, j, n](const State& s) {
      return tr.first_privileged(s) == (j + 1) % n;
    };
    EXPECT_TRUE(leads_to(space, from, target)) << "node " << j;
  }
}

TEST(LivenessTest, SmallRingsEventuallyYieldPrivilege) {
  for (const int which : {0, 1}) {
    const auto sr = which == 0 ? make_dijkstra_three_state(5)
                               : make_dijkstra_four_state(5);
    StateSpace space(sr.design.program);
    const auto S = sr.design.S();
    const Program& p = sr.design.program;
    for (int j = 0; j < 5; ++j) {
      auto privileged_j = [&p, j](const State& s) {
        for (const auto& a : p.actions()) {
          if (a.process() == j && a.enabled(s)) return true;
        }
        return false;
      };
      auto from = [S, privileged_j](const State& s) {
        return S(s) && privileged_j(s);
      };
      auto target = [privileged_j](const State& s) {
        return !privileged_j(s);
      };
      EXPECT_TRUE(leads_to(space, from, target))
          << (which == 0 ? "three" : "four") << "-state machine " << j;
    }
  }
}

TEST(LivenessTest, DiffusingRootStartsNextWaveWithToggledSession) {
  const auto tree = RootedTree::balanced(5, 2);
  const auto dd = make_diffusing(tree, true);
  StateSpace space(dd.design.program);
  const auto S = dd.design.S();
  const VarId rc = dd.color[static_cast<std::size_t>(tree.root())];
  const VarId rs = dd.session[static_cast<std::size_t>(tree.root())];
  for (Value bit : {0, 1}) {
    auto from = [S, rc, rs, bit](const State& s) {
      return S(s) && s.get(rc) == kGreen && s.get(rs) == bit;
    };
    auto target = [rc, rs, bit](const State& s) {
      return s.get(rc) == kRed && s.get(rs) == 1 - bit;
    };
    EXPECT_TRUE(leads_to(space, from, target)) << "session bit " << bit;
  }
}

TEST(LivenessTest, DiffusingEveryRedNodeTurnsGreenAgain) {
  const auto tree = RootedTree::chain(4);
  const auto dd = make_diffusing(tree, true);
  StateSpace space(dd.design.program);
  const auto S = dd.design.S();
  for (int j = 0; j < tree.size(); ++j) {
    const VarId cj = dd.color[static_cast<std::size_t>(j)];
    auto from = [S, cj](const State& s) {
      return S(s) && s.get(cj) == kRed;
    };
    auto target = [cj](const State& s) { return s.get(cj) == kGreen; };
    EXPECT_TRUE(leads_to(space, from, target)) << "node " << j;
  }
}

TEST(LivenessTest, BoundedRingYieldsUntilCeiling) {
  // The bounded paper design circulates while headroom remains: from
  // S with node-0 privileged and x.0 < x_max, node 1 eventually becomes
  // privileged.
  const auto tr = make_token_ring_bounded(4, 3, true);
  StateSpace space(tr.design.program);
  const auto S = tr.design.S();
  auto from = [&](const State& s) {
    return S(s) && tr.first_privileged(s) == 0 && s.get(tr.x[0]) < 3;
  };
  auto target = [&](const State& s) { return tr.first_privileged(s) == 1; };
  EXPECT_TRUE(leads_to(space, from, target));
}

}  // namespace
}  // namespace nonmask
