// Cross-module integration: the full design-method pipeline on every
// protocol — write-set contracts, theorem validation vs exact checking vs
// simulation, fault injection, and daemon sweeps.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "cgraph/theorems.hpp"
#include "checker/closure_check.hpp"
#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "checker/variant.hpp"
#include "engine/simulator.hpp"
#include "faults/fault.hpp"
#include "faults/injector.hpp"
#include "msg/mp_diffusing.hpp"
#include "msg/mp_token_ring.hpp"
#include "protocols/atomic_action.hpp"
#include "protocols/coloring.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/leader_election.hpp"
#include "protocols/matching.hpp"
#include "protocols/running_example.hpp"
#include "protocols/spanning_tree.hpp"
#include "protocols/token_ring.hpp"
#include "sched/daemons.hpp"

namespace nonmask {
namespace {

/// Every shipped design, at checker-friendly scale.
std::vector<Design> all_small_designs() {
  std::vector<Design> out;
  out.push_back(make_running_example(RunningExampleVariant::kWriteYZ));
  out.push_back(make_running_example(RunningExampleVariant::kDecreaseX));
  out.push_back(make_diffusing(RootedTree::balanced(5, 2), true).design);
  out.push_back(make_diffusing(RootedTree::chain(4), false).design);
  out.push_back(make_token_ring_bounded(4, 3, true).design);
  out.push_back(make_token_ring_bounded(3, 3, false).design);
  out.push_back(make_dijkstra_ring(4, 5).design);
  out.push_back(make_spanning_tree(UndirectedGraph::cycle(4)).design);
  out.push_back(make_coloring(UndirectedGraph::grid(2, 2)).design);
  out.push_back(make_matching(UndirectedGraph::path(4)).design);
  out.push_back(make_leader_election(4).design);
  out.push_back(make_atomic_action(2).design);
  out.push_back(make_mp_token_ring(2, 3).design);
  out.push_back(make_mp_diffusing(RootedTree::chain(3)).design);
  return out;
}

// Every action of every protocol honors its declared write set at every
// state — the foundation under constraint graphs.
TEST(IntegrationTest, AllProtocolsHonorWriteSetContracts) {
  for (const Design& d : all_small_designs()) {
    StateSpace space(d.program);
    State s(d.program.num_variables());
    for (std::uint64_t code = 0; code < space.size(); ++code) {
      space.decode_into(code, s);
      const std::string report = d.program.check_contracts(s);
      ASSERT_EQ(report, "") << d.name << ": " << report;
    }
  }
}

// Program actions keep states inside variable domains.
TEST(IntegrationTest, AllProtocolsStayInDomain) {
  for (const Design& d : all_small_designs()) {
    StateSpace space(d.program);
    State s(d.program.num_variables());
    for (std::uint64_t code = 0; code < space.size(); ++code) {
      space.decode_into(code, s);
      for (const auto& a : d.program.actions()) {
        if (a.kind() == ActionKind::kFault || !a.enabled(s)) continue;
        EXPECT_TRUE(d.program.in_domain(a.apply(s)))
            << d.name << " action " << a.name();
      }
    }
  }
}

// S and T closed for every design (the closure half of T-tolerance).
TEST(IntegrationTest, ClosureHoldsEverywhere) {
  for (const Design& d : all_small_designs()) {
    StateSpace space(d.program);
    EXPECT_TRUE(check_closed(space, d.S()).closed) << d.name;
    EXPECT_TRUE(check_closed(space, d.T()).closed) << d.name;
  }
}

// Exact convergence verdicts: every design converges from its fault-span
// except the deliberately-broken running example and the fairness-needing
// message-passing ring.
TEST(IntegrationTest, ConvergenceVerdictsMatchExpectations) {
  for (const Design& d : all_small_designs()) {
    StateSpace space(d.program);
    const auto report = check_convergence(space, d.S(), d.T());
    const bool needs_fairness = d.name == "mp-token-ring";
    if (needs_fairness) {
      EXPECT_EQ(report.verdict, ConvergenceVerdict::kViolated) << d.name;
    } else {
      EXPECT_EQ(report.verdict, ConvergenceVerdict::kConverges) << d.name;
    }
  }
}

// Simulation agrees with the checker: converging designs converge from
// random states under a weakly fair daemon within the checker's worst-case
// bound times a slack factor (rounds-to-steps conversion).
TEST(IntegrationTest, SimulationRespectsCheckerBound) {
  for (const Design& d : all_small_designs()) {
    if (d.name == "mp-token-ring") continue;  // needs fairness
    StateSpace space(d.program);
    const auto report = check_convergence(space, d.S(), d.T());
    ASSERT_EQ(report.verdict, ConvergenceVerdict::kConverges) << d.name;

    RoundRobinDaemon daemon;
    Rng rng(271);
    const auto T = d.T();
    for (int trial = 0; trial < 20; ++trial) {
      State start = d.program.random_state(rng);
      if (!T(start)) continue;  // respect the fault-span
      RunOptions opts;
      // Generous: every ¬S step the daemon wastes still ends within
      // max_steps_to_S * actions sweeps.
      opts.max_steps =
          (report.max_steps_to_S + 2) * (d.program.num_actions() + 1) * 4;
      const auto r = converge(d, start, daemon, opts);
      EXPECT_TRUE(r.converged) << d.name << " trial " << trial;
    }
  }
}

// The variant function never increases along any transition in ¬S — the
// Section 8 well-foundedness property, checked for the paper's designs.
TEST(IntegrationTest, VariantNeverIncreasesOutsideS) {
  std::vector<Design> designs;
  designs.push_back(make_running_example(RunningExampleVariant::kWriteYZ));
  designs.push_back(make_diffusing(RootedTree::chain(3), true).design);
  designs.push_back(make_token_ring_bounded(3, 2, true).design);
  for (const Design& d : designs) {
    StateSpace space(d.program);
    const auto variant = compute_variant(space, d.S());
    ASSERT_TRUE(variant.has_value()) << d.name;
    const auto S = d.S();
    State s(d.program.num_variables());
    for (std::uint64_t code = 0; code < space.size(); ++code) {
      space.decode_into(code, s);
      if (S(s)) continue;
      for (const auto& a : d.program.actions()) {
        if (a.kind() == ActionKind::kFault || !a.enabled(s)) continue;
        const State next = a.apply(s);
        EXPECT_LT((*variant)(next), (*variant)(s))
            << d.name << " action " << a.name();
      }
    }
  }
}

// Fault -> repair -> fault -> repair: the nonmasking contract at system
// level, with violation telemetry proving a genuine (temporary) violation.
TEST(IntegrationTest, NonmaskingRepairCycle) {
  const auto dd = make_diffusing(RootedTree::balanced(7, 2), true);
  const Design& d = dd.design;
  auto inj = FaultInjector::periodic(
      std::make_shared<CorruptKProcesses>(2), 300, 3, 7);
  RandomDaemon daemon(23);
  Simulator sim(d.program, daemon);
  RunOptions opts;
  opts.max_steps = 50'000;
  opts.perturb = inj.hook(d.program);
  opts.track_violations = &d.invariant;
  opts.stop_when = [S = d.S(), &inj](const State& s) {
    return inj.faults_injected() == 3 && S(s);
  };
  const auto r = sim.run(d.program.initial_state(), opts);
  ASSERT_TRUE(r.converged);
  const auto& timeline = r.trace.violation_timeline();
  // The invariant was genuinely violated at some point, and repaired.
  std::size_t max_violations = 0;
  for (std::size_t v : timeline) max_violations = std::max(max_violations, v);
  EXPECT_GT(max_violations, 0u);
  EXPECT_EQ(timeline.back(), 0u);
}

// Daemon sweep: every converging design converges under every fair-ish
// daemon implementation.
TEST(IntegrationTest, DaemonSweep) {
  const auto dd = make_diffusing(RootedTree::balanced(6, 2), true);
  const Design& d = dd.design;
  Rng rng(137);
  const State start = d.program.random_state(rng);

  std::vector<DaemonPtr> daemons;
  daemons.push_back(std::make_unique<RandomDaemon>(1));
  daemons.push_back(std::make_unique<RoundRobinDaemon>());
  daemons.push_back(std::make_unique<FirstEnabledDaemon>());
  daemons.push_back(std::make_unique<AdversarialDaemon>(d.invariant, 2));
  daemons.push_back(std::make_unique<DistributedDaemon>(0.5, 3));
  daemons.push_back(std::make_unique<SynchronousDaemon>());
  daemons.push_back(std::make_unique<WeaklyFairDaemon>(
      std::make_unique<RandomDaemon>(4), 16));

  for (auto& daemon : daemons) {
    RunOptions opts;
    opts.max_steps = 100'000;
    const auto r = converge(d, start, *daemon, opts);
    EXPECT_TRUE(r.converged) << daemon->name();
  }
}

// The design workbench flow: validate_design picks a theorem for every
// protocol whose constraint graph supports one.
TEST(IntegrationTest, WorkbenchVerdictSummary) {
  struct Expectation {
    Design design;
    bool theorem_applies;
  };
  std::vector<Expectation> table;
  table.push_back(
      {make_running_example(RunningExampleVariant::kWriteYZ), true});
  table.push_back(
      {make_running_example(RunningExampleVariant::kWriteXBoth), false});
  table.push_back(
      {make_running_example(RunningExampleVariant::kDecreaseX), true});
  table.push_back({make_diffusing(RootedTree::star(4), false).design, true});
  table.push_back({make_leader_election(3).design, true});
  table.push_back({make_atomic_action(2).design, true});
  table.push_back(
      {make_spanning_tree(UndirectedGraph::cycle(4)).design, false});

  for (auto& e : table) {
    StateSpace space(e.design.program);
    ValidationOptions opts;
    opts.space = &space;
    const auto report = validate_design(e.design, opts);
    EXPECT_EQ(report.applies, e.theorem_applies)
        << e.design.name << "\n"
        << format_report(report);
  }
}

}  // namespace
}  // namespace nonmask
